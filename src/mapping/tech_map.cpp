#include "mapping/tech_map.hpp"

#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"

namespace mcfpga::mapping {

namespace {

using netlist::Dfg;
using netlist::DfgNode;
using netlist::NodeRef;
using netlist::NodeType;

/// Splits `tt` (over `arity` inputs) on the top input.
std::pair<BitVector, BitVector> cofactor_tables(const BitVector& tt,
                                                std::size_t arity) {
  const std::size_t half = std::size_t{1} << (arity - 1);
  BitVector lo(half);
  BitVector hi(half);
  for (std::size_t a = 0; a < half; ++a) {
    lo.set(a, tt.get(a));
    hi.set(a, tt.get(a + half));
  }
  return {std::move(lo), std::move(hi)};
}

/// 3-input mux truth table: out = in2 ? in1 : in0.
BitVector mux3_table() {
  // Address bits (in2, in1, in0); out = in2 ? in1 : in0.
  BitVector tt(8);
  for (std::size_t a = 0; a < 8; ++a) {
    const bool in0 = a & 1;
    const bool in1 = a & 2;
    const bool in2 = a & 4;
    tt.set(a, in2 ? in1 : in0);
  }
  return tt;
}

/// Recursively emits `tt(fanins)` into `out`, returning the node computing
/// it.  `serial` disambiguates generated names.
NodeRef emit(Dfg& out, const std::string& base_name,
             const std::vector<NodeRef>& fanins, const BitVector& tt,
             std::size_t max_arity, std::size_t& serial) {
  if (fanins.size() <= max_arity) {
    return out.add_lut(base_name + "#" + std::to_string(serial++),
                       fanins, tt);
  }
  const std::size_t arity = fanins.size();
  auto [lo_tt, hi_tt] = cofactor_tables(tt, arity);
  std::vector<NodeRef> sub(fanins.begin(), fanins.end() - 1);
  const NodeRef lo = emit(out, base_name, sub, lo_tt, max_arity, serial);
  const NodeRef hi = emit(out, base_name, sub, hi_tt, max_arity, serial);
  return out.add_lut(base_name + "#" + std::to_string(serial++),
                     {lo, hi, fanins.back()}, mux3_table());
}

}  // namespace

Dfg decompose_to_arity(const Dfg& dfg, std::size_t max_arity) {
  MCFPGA_REQUIRE(max_arity >= 3, "decomposition needs max_arity >= 3");
  Dfg out;
  std::vector<NodeRef> remap(dfg.num_nodes(), netlist::kNoNode);
  std::size_t serial = 0;

  for (std::size_t i = 0; i < dfg.num_nodes(); ++i) {
    const DfgNode& n = dfg.node(static_cast<NodeRef>(i));
    if (n.type == NodeType::kPrimaryInput) {
      remap[i] = out.add_input(n.name);
      continue;
    }
    if (n.fanins.size() <= max_arity) {
      std::vector<NodeRef> fanins;
      fanins.reserve(n.fanins.size());
      for (const NodeRef f : n.fanins) {
        fanins.push_back(remap[static_cast<std::size_t>(f)]);
      }
      remap[i] = out.add_lut(n.name, std::move(fanins), n.truth_table);
    } else {
      std::vector<NodeRef> fanins;
      fanins.reserve(n.fanins.size());
      for (const NodeRef f : n.fanins) {
        fanins.push_back(remap[static_cast<std::size_t>(f)]);
      }
      remap[i] =
          emit(out, n.name, fanins, n.truth_table, max_arity, serial);
    }
  }
  for (const auto& o : dfg.outputs()) {
    out.mark_output(remap[static_cast<std::size_t>(o.node)], o.name);
  }
  out.validate();
  return out;
}

netlist::MultiContextNetlist decompose_to_arity(
    const netlist::MultiContextNetlist& nl, std::size_t max_arity) {
  netlist::MultiContextNetlist out(nl.num_contexts());
  for (std::size_t c = 0; c < nl.num_contexts(); ++c) {
    out.context(c) = decompose_to_arity(nl.context(c), max_arity);
  }
  return out;
}

}  // namespace mcfpga::mapping
