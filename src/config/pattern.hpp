// Per-configuration-bit context patterns and their classification
// (paper Section 2, Figs. 3-5).
//
// A ContextPattern records the value one configuration bit takes in each of
// the n contexts.  The paper's key observation is that for realistic
// multi-context workloads almost all patterns fall into cheap classes:
//
//   kConstant   (Fig. 3)  all-0 / all-1           -> 1 switch element
//   kSingleBit  (Fig. 4)  equals Sj or ~Sj        -> 1 switch element
//   kComplex    (Fig. 5)  anything else           -> SE mux tree (~4 SEs @ 4 ctx)
//
// The classification generalizes beyond 4 contexts: a pattern is kSingleBit
// iff its value is a function of exactly one context-ID bit.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/bitvector.hpp"

namespace mcfpga::config {

enum class PatternClass {
  kConstant,   ///< Fig. 3: context-independent (all-0 or all-1).
  kSingleBit,  ///< Fig. 4: equals one context-ID bit or its complement.
  kComplex,    ///< Fig. 5: depends on two or more context-ID bits.
};

std::string to_string(PatternClass cls);

/// The value of one configuration bit in each context.
class ContextPattern {
 public:
  /// All-`value` pattern over `num_contexts` contexts.
  explicit ContextPattern(std::size_t num_contexts, bool value = false);
  /// From explicit per-context values (index = context number).
  explicit ContextPattern(BitVector values);
  /// Parses "1000"-style strings written MSB-first like the paper's figures:
  /// "1000" means (C3,C2,C1,C0) = (1,0,0,0).
  static ContextPattern from_string(const std::string& msb_first);
  /// The pattern that mirrors ID bit Sj (optionally complemented).
  static ContextPattern for_id_bit(std::size_t num_contexts, std::size_t bit,
                                   bool inverted);

  std::size_t num_contexts() const { return values_.size(); }
  bool value_in(std::size_t context) const { return values_.get(context); }
  void set_value(std::size_t context, bool value);
  const BitVector& values() const { return values_; }

  /// Paper-style MSB-first rendering: (C3..C0)=(1,0,0,0) -> "1000".
  std::string to_string() const;

  bool operator==(const ContextPattern& o) const {
    return values_ == o.values_;
  }
  bool operator!=(const ContextPattern& o) const { return !(*this == o); }

 private:
  BitVector values_;
};

/// Result of classifying a pattern.
struct PatternInfo {
  PatternClass cls = PatternClass::kComplex;
  /// For kConstant: the constant value.
  bool constant_value = false;
  /// For kSingleBit: which ID bit, and whether complemented.
  std::size_t id_bit = 0;
  bool inverted = false;

  /// "const 0", "S1", "~S0", "complex", ... for reports.
  std::string describe() const;
};

/// Classifies a pattern per the Figs. 3-5 taxonomy.
PatternInfo classify(const ContextPattern& pattern);

/// Enumerates all 2^n patterns for small n (n <= 16), in numeric order of
/// their context-value word.  Used by exhaustive tests and the Fig. 3-5
/// census bench.
std::vector<ContextPattern> all_patterns(std::size_t num_contexts);

/// True iff the pattern is periodic with the given period, e.g. "0101" has
/// period 2 (the paper calls this "regularity": repeating bits in an order).
bool has_period(const ContextPattern& pattern, std::size_t period);

/// Smallest period of the pattern (1 = constant, num_contexts = aperiodic).
std::size_t smallest_period(const ContextPattern& pattern);

}  // namespace mcfpga::config
