#include "config/context_id.hpp"

#include <bit>

#include "common/error.hpp"

namespace mcfpga::config {

bool is_valid_context_count(std::size_t n) {
  return n >= 2 && n <= 64 && std::has_single_bit(n);
}

std::size_t num_id_bits(std::size_t num_contexts) {
  MCFPGA_REQUIRE(is_valid_context_count(num_contexts),
                 "context count must be a power of two in [2, 64]");
  return static_cast<std::size_t>(std::countr_zero(num_contexts));
}

bool id_bit_value(std::size_t context, std::size_t bit) {
  return (context >> bit) & 1u;
}

std::string id_bit_name(std::size_t bit, bool inverted) {
  return (inverted ? "~S" : "S") + std::to_string(bit);
}

}  // namespace mcfpga::config
