#include "config/bitstream.hpp"

#include "common/error.hpp"
#include "config/context_id.hpp"

namespace mcfpga::config {

std::string to_string(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kRoutingSwitch:
      return "routing-switch";
    case ResourceKind::kLutBit:
      return "lut-bit";
    case ResourceKind::kControlBit:
      return "control-bit";
  }
  return "?";
}

Bitstream::Bitstream(std::size_t num_contexts) : num_contexts_(num_contexts) {
  MCFPGA_REQUIRE(is_valid_context_count(num_contexts),
                 "context count must be a power of two in [2, 64]");
}

std::size_t Bitstream::add_row(std::string name, ResourceKind kind,
                               ContextPattern pattern) {
  MCFPGA_REQUIRE(pattern.num_contexts() == num_contexts_,
                 "row context count must match bitstream context count");
  rows_.push_back(BitstreamRow{std::move(name), kind, std::move(pattern)});
  return rows_.size() - 1;
}

const BitstreamRow& Bitstream::row(std::size_t index) const {
  MCFPGA_REQUIRE(index < rows_.size(), "row index out of range");
  return rows_[index];
}

std::size_t Bitstream::count_kind(ResourceKind kind) const {
  std::size_t n = 0;
  for (const auto& row : rows_) {
    if (row.kind == kind) {
      ++n;
    }
  }
  return n;
}

BitVector Bitstream::plane(std::size_t context) const {
  MCFPGA_REQUIRE(context < num_contexts_, "context out of range");
  BitVector plane(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    plane.set(i, rows_[i].pattern.value_in(context));
  }
  return plane;
}

void Bitstream::append(const Bitstream& other) {
  MCFPGA_REQUIRE(other.num_contexts_ == num_contexts_,
                 "appended bitstream must have the same context count");
  rows_.insert(rows_.end(), other.rows_.begin(), other.rows_.end());
}

}  // namespace mcfpga::config
