// Context-ID encoding (paper Table 2).
//
// An n-context fabric broadcasts ceil(log2 n) context-ID bits (S0, S1, ...)
// on global wires.  Context c is encoded as the binary value of c: bit Sj of
// context c is (c >> j) & 1.  For the paper's 4-context example this gives
// exactly Table 2: S0 = 0,1,0,1 and S1 = 0,0,1,1 across contexts 0..3.
#pragma once

#include <cstddef>
#include <string>

namespace mcfpga::config {

/// Number of context-ID bits needed to address `num_contexts` contexts.
/// num_contexts must be a power of two >= 2 (the paper's fabrics always
/// use full ID-bit ranges; 4 contexts -> 2 bits).
std::size_t num_id_bits(std::size_t num_contexts);

/// True iff n is a supported context count (power of two, 2..64).
bool is_valid_context_count(std::size_t n);

/// Value of ID bit Sj in context `context`.
bool id_bit_value(std::size_t context, std::size_t bit);

/// Human-readable name of an ID-bit source: "S0", "~S1", ...
std::string id_bit_name(std::size_t bit, bool inverted);

}  // namespace mcfpga::config
