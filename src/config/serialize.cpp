#include "config/serialize.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "config/context_id.hpp"

namespace mcfpga::config {

namespace {

constexpr const char* kMagic = "mcfpga-bitstream v1";

/// Strict counted-field parse: the token must be a complete decimal
/// number (no sign, no trailing garbage, no overflow wrap — see
/// common/strings.hpp).  `fail` is the format's line-numbered thrower.
template <typename Fail>
std::size_t parse_count(std::istream& ls, const char* what,
                        std::size_t line, Fail&& fail) {
  std::string token;
  if (!(ls >> token)) {
    fail(line, std::string("missing ") + what);
  }
  std::uint64_t value = 0;
  if (!try_parse_u64(token, value) ||
      value > std::numeric_limits<std::size_t>::max()) {
    fail(line, std::string("invalid ") + what + " '" + token + "'");
  }
  return static_cast<std::size_t>(value);
}

/// Rejects trailing tokens so "contexts 4 junk" is an error, not noise.
template <typename Fail>
void expect_line_end(std::istream& ls, std::size_t line, Fail&& fail) {
  std::string extra;
  if (ls >> extra) {
    fail(line, "unexpected trailing token '" + extra + "'");
  }
}

ResourceKind parse_kind(const std::string& token, std::size_t line) {
  if (token == "routing-switch") {
    return ResourceKind::kRoutingSwitch;
  }
  if (token == "lut-bit") {
    return ResourceKind::kLutBit;
  }
  if (token == "control-bit") {
    return ResourceKind::kControlBit;
  }
  throw InvalidArgument("bitstream line " + std::to_string(line) +
                        ": unknown resource kind '" + token + "'");
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw InvalidArgument("bitstream line " + std::to_string(line) + ": " +
                        what);
}

}  // namespace

void write_bitstream(std::ostream& os, const Bitstream& bitstream) {
  os << kMagic << "\n";
  os << "contexts " << bitstream.num_contexts() << "\n";
  os << "rows " << bitstream.num_rows() << "\n";
  for (const auto& row : bitstream.rows()) {
    os << row.name << ' ' << to_string(row.kind) << ' '
       << row.pattern.to_string() << "\n";
  }
}

std::string to_text(const Bitstream& bitstream) {
  std::ostringstream os;
  write_bitstream(os, bitstream);
  return os.str();
}

Bitstream read_bitstream(std::istream& is) {
  std::string line;
  std::size_t line_no = 1;

  if (!std::getline(is, line) || line != kMagic) {
    fail(line_no, "expected header '" + std::string(kMagic) + "'");
  }

  ++line_no;
  std::size_t num_contexts = 0;
  {
    std::string key;
    if (!std::getline(is, line)) {
      fail(line_no, "missing 'contexts' line");
    }
    std::istringstream ls(line);
    if (!(ls >> key) || key != "contexts") {
      fail(line_no, "malformed 'contexts' line");
    }
    num_contexts = parse_count(ls, "context count", line_no, fail);
    expect_line_end(ls, line_no, fail);
  }
  if (!is_valid_context_count(num_contexts)) {
    fail(line_no, "invalid context count " + std::to_string(num_contexts));
  }

  ++line_no;
  std::size_t rows = 0;
  {
    std::string key;
    if (!std::getline(is, line)) {
      fail(line_no, "missing 'rows' line");
    }
    std::istringstream ls(line);
    if (!(ls >> key) || key != "rows") {
      fail(line_no, "malformed 'rows' line");
    }
    rows = parse_count(ls, "row count", line_no, fail);
    expect_line_end(ls, line_no, fail);
  }

  Bitstream bs(num_contexts);
  for (std::size_t r = 0; r < rows; ++r) {
    ++line_no;
    if (!std::getline(is, line)) {
      fail(line_no, "expected " + std::to_string(rows) + " rows, got " +
                        std::to_string(r));
    }
    std::istringstream ls(line);
    std::string name;
    std::string kind;
    std::string bits;
    if (!(ls >> name >> kind >> bits)) {
      fail(line_no, "malformed row (need: name kind pattern)");
    }
    expect_line_end(ls, line_no, fail);
    if (bits.size() != num_contexts) {
      fail(line_no, "pattern width " + std::to_string(bits.size()) +
                        " != contexts " + std::to_string(num_contexts));
    }
    try {
      bs.add_row(std::move(name), parse_kind(kind, line_no),
                 ContextPattern::from_string(bits));
    } catch (const InvalidArgument& e) {
      fail(line_no, e.what());
    }
  }
  return bs;
}

Bitstream from_text(const std::string& text) {
  std::istringstream is(text);
  return read_bitstream(is);
}

namespace {

constexpr const char* kNetlistMagic = "mcfpga-netlist v1";

[[noreturn]] void nfail(std::size_t line, const std::string& what) {
  throw InvalidArgument("netlist line " + std::to_string(line) + ": " +
                        what);
}

void check_name(const std::string& name) {
  if (name.empty()) {
    throw InvalidArgument("netlist serialization: empty name");
  }
  for (const char c : name) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      throw InvalidArgument("netlist serialization: name '" + name +
                            "' contains whitespace");
    }
  }
}

/// Reads one non-empty line into an istringstream positioned past `key`.
std::istringstream expect_line(std::istream& is, std::size_t& line_no,
                               const char* key) {
  std::string line;
  ++line_no;
  if (!std::getline(is, line)) {
    nfail(line_no, std::string("missing '") + key + "' line");
  }
  std::istringstream ls(line);
  std::string got;
  if (!(ls >> got) || got != key) {
    nfail(line_no, std::string("expected '") + key + "' line");
  }
  return ls;
}

}  // namespace

void write_netlist(std::ostream& os,
                   const netlist::MultiContextNetlist& netlist) {
  os << kNetlistMagic << "\n";
  os << "contexts " << netlist.num_contexts() << "\n";
  for (std::size_t c = 0; c < netlist.num_contexts(); ++c) {
    const netlist::Dfg& dfg = netlist.context(c);
    os << "context " << c << "\n";
    os << "nodes " << dfg.num_nodes() << "\n";
    for (std::size_t i = 0; i < dfg.num_nodes(); ++i) {
      const netlist::DfgNode& node =
          dfg.node(static_cast<netlist::NodeRef>(i));
      check_name(node.name);
      if (node.type == netlist::NodeType::kPrimaryInput) {
        os << "in " << node.name << "\n";
      } else {
        os << "lut " << node.name << ' ' << node.fanins.size();
        for (const netlist::NodeRef f : node.fanins) {
          os << ' ' << f;
        }
        os << ' ' << node.truth_table.to_string() << "\n";
      }
    }
    os << "outputs " << dfg.outputs().size() << "\n";
    for (const netlist::DfgOutput& out : dfg.outputs()) {
      check_name(out.name);
      os << "out " << out.node << ' ' << out.name << "\n";
    }
  }
}

std::string netlist_to_text(const netlist::MultiContextNetlist& netlist) {
  std::ostringstream os;
  write_netlist(os, netlist);
  return os.str();
}

netlist::MultiContextNetlist read_netlist(std::istream& is) {
  std::string line;
  std::size_t line_no = 1;
  if (!std::getline(is, line) || line != kNetlistMagic) {
    nfail(line_no, "expected header '" + std::string(kNetlistMagic) + "'");
  }

  std::size_t num_contexts = 0;
  {
    std::istringstream ls = expect_line(is, line_no, "contexts");
    num_contexts = parse_count(ls, "context count", line_no, nfail);
    expect_line_end(ls, line_no, nfail);
    if (num_contexts == 0) {
      nfail(line_no, "malformed 'contexts' line");
    }
  }

  netlist::MultiContextNetlist result(num_contexts);
  for (std::size_t c = 0; c < num_contexts; ++c) {
    {
      std::istringstream ls = expect_line(is, line_no, "context");
      const std::size_t got =
          parse_count(ls, "context index", line_no, nfail);
      expect_line_end(ls, line_no, nfail);
      if (got != c) {
        nfail(line_no, "expected 'context " + std::to_string(c) + "'");
      }
    }
    std::size_t num_nodes = 0;
    {
      std::istringstream ls = expect_line(is, line_no, "nodes");
      num_nodes = parse_count(ls, "node count", line_no, nfail);
      expect_line_end(ls, line_no, nfail);
    }
    netlist::Dfg& dfg = result.context(c);
    for (std::size_t i = 0; i < num_nodes; ++i) {
      ++line_no;
      if (!std::getline(is, line)) {
        nfail(line_no, "expected " + std::to_string(num_nodes) + " nodes");
      }
      std::istringstream ls(line);
      std::string kind;
      std::string name;
      if (!(ls >> kind >> name)) {
        nfail(line_no, "malformed node line");
      }
      if (kind == "in") {
        expect_line_end(ls, line_no, nfail);
        dfg.add_input(std::move(name));
        continue;
      }
      if (kind != "lut") {
        nfail(line_no, "unknown node kind '" + kind + "'");
      }
      const std::size_t arity = parse_count(ls, "lut arity", line_no, nfail);
      if (arity >= 8 * sizeof(std::size_t)) {
        nfail(line_no, "lut arity " + std::to_string(arity) + " too large");
      }
      std::vector<netlist::NodeRef> fanins(arity);
      for (std::size_t k = 0; k < arity; ++k) {
        const std::size_t fanin =
            parse_count(ls, "lut fanin", line_no, nfail);
        if (fanin >= i) {
          nfail(line_no, "lut fanin out of range");
        }
        fanins[k] = static_cast<netlist::NodeRef>(fanin);
      }
      std::string bits;
      if (!(ls >> bits) || bits.size() != (std::size_t{1} << arity)) {
        nfail(line_no, "truth table must have 2^arity bits");
      }
      expect_line_end(ls, line_no, nfail);
      for (const char b : bits) {
        if (b != '0' && b != '1') {
          nfail(line_no, "truth table must be over {0,1}");
        }
      }
      try {
        dfg.add_lut(std::move(name), std::move(fanins),
                    BitVector::from_string(bits));
      } catch (const InvalidArgument& e) {
        nfail(line_no, e.what());
      }
    }
    std::size_t num_outputs = 0;
    {
      std::istringstream ls = expect_line(is, line_no, "outputs");
      num_outputs = parse_count(ls, "output count", line_no, nfail);
      expect_line_end(ls, line_no, nfail);
    }
    for (std::size_t i = 0; i < num_outputs; ++i) {
      ++line_no;
      if (!std::getline(is, line)) {
        nfail(line_no,
              "expected " + std::to_string(num_outputs) + " outputs");
      }
      std::istringstream ls(line);
      std::string key;
      if (!(ls >> key) || key != "out") {
        nfail(line_no, "malformed 'out' line");
      }
      const std::size_t node =
          parse_count(ls, "output node", line_no, nfail);
      std::string name;
      if (!(ls >> name)) {
        nfail(line_no, "malformed 'out' line");
      }
      expect_line_end(ls, line_no, nfail);
      if (node >= num_nodes) {
        nfail(line_no, "output node out of range");
      }
      dfg.mark_output(static_cast<netlist::NodeRef>(node), std::move(name));
    }
  }
  return result;
}

netlist::MultiContextNetlist netlist_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_netlist(is);
}

}  // namespace mcfpga::config
