#include "config/serialize.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "config/context_id.hpp"

namespace mcfpga::config {

namespace {

constexpr const char* kMagic = "mcfpga-bitstream v1";

ResourceKind parse_kind(const std::string& token, std::size_t line) {
  if (token == "routing-switch") {
    return ResourceKind::kRoutingSwitch;
  }
  if (token == "lut-bit") {
    return ResourceKind::kLutBit;
  }
  if (token == "control-bit") {
    return ResourceKind::kControlBit;
  }
  throw InvalidArgument("bitstream line " + std::to_string(line) +
                        ": unknown resource kind '" + token + "'");
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw InvalidArgument("bitstream line " + std::to_string(line) + ": " +
                        what);
}

}  // namespace

void write_bitstream(std::ostream& os, const Bitstream& bitstream) {
  os << kMagic << "\n";
  os << "contexts " << bitstream.num_contexts() << "\n";
  os << "rows " << bitstream.num_rows() << "\n";
  for (const auto& row : bitstream.rows()) {
    os << row.name << ' ' << to_string(row.kind) << ' '
       << row.pattern.to_string() << "\n";
  }
}

std::string to_text(const Bitstream& bitstream) {
  std::ostringstream os;
  write_bitstream(os, bitstream);
  return os.str();
}

Bitstream read_bitstream(std::istream& is) {
  std::string line;
  std::size_t line_no = 1;

  if (!std::getline(is, line) || line != kMagic) {
    fail(line_no, "expected header '" + std::string(kMagic) + "'");
  }

  ++line_no;
  std::size_t num_contexts = 0;
  {
    std::string key;
    if (!std::getline(is, line)) {
      fail(line_no, "missing 'contexts' line");
    }
    std::istringstream ls(line);
    if (!(ls >> key >> num_contexts) || key != "contexts") {
      fail(line_no, "malformed 'contexts' line");
    }
  }
  if (!is_valid_context_count(num_contexts)) {
    fail(line_no, "invalid context count " + std::to_string(num_contexts));
  }

  ++line_no;
  std::size_t rows = 0;
  {
    std::string key;
    if (!std::getline(is, line)) {
      fail(line_no, "missing 'rows' line");
    }
    std::istringstream ls(line);
    if (!(ls >> key >> rows) || key != "rows") {
      fail(line_no, "malformed 'rows' line");
    }
  }

  Bitstream bs(num_contexts);
  for (std::size_t r = 0; r < rows; ++r) {
    ++line_no;
    if (!std::getline(is, line)) {
      fail(line_no, "expected " + std::to_string(rows) + " rows, got " +
                        std::to_string(r));
    }
    std::istringstream ls(line);
    std::string name;
    std::string kind;
    std::string bits;
    if (!(ls >> name >> kind >> bits)) {
      fail(line_no, "malformed row (need: name kind pattern)");
    }
    if (bits.size() != num_contexts) {
      fail(line_no, "pattern width " + std::to_string(bits.size()) +
                        " != contexts " + std::to_string(num_contexts));
    }
    try {
      bs.add_row(std::move(name), parse_kind(kind, line_no),
                 ContextPattern::from_string(bits));
    } catch (const InvalidArgument& e) {
      fail(line_no, e.what());
    }
  }
  return bs;
}

Bitstream from_text(const std::string& text) {
  std::istringstream is(text);
  return read_bitstream(is);
}

}  // namespace mcfpga::config
