// Textual bitstream serialization.
//
// A stable, diffable, line-oriented format so bitstreams can be archived,
// compared across tool versions, and fed to external analysis:
//
//   mcfpga-bitstream v1
//   contexts 4
//   rows 3
//   sb(0,0).p0 routing-switch 0101
//   lb(1,2).out0[7] lut-bit 1111
//   lb(1,2).mode0 control-bit 0000
//
// Patterns are written MSB-first (C_{n-1}..C_0), matching the paper's
// figures and ContextPattern::to_string().
#pragma once

#include <iosfwd>
#include <string>

#include "config/bitstream.hpp"

namespace mcfpga::config {

/// Writes the v1 text format.
void write_bitstream(std::ostream& os, const Bitstream& bitstream);
std::string to_text(const Bitstream& bitstream);

/// Parses the v1 text format; throws InvalidArgument with a line number on
/// any malformed input.
Bitstream read_bitstream(std::istream& is);
Bitstream from_text(const std::string& text);

}  // namespace mcfpga::config
