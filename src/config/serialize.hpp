// Textual bitstream and netlist serialization.
//
// Stable, diffable, line-oriented formats so designs can be archived,
// compared across tool versions, and fed to external analysis.
//
// Bitstream (v1):
//
//   mcfpga-bitstream v1
//   contexts 4
//   rows 3
//   sb(0,0).p0 routing-switch 0101
//   lb(1,2).out0[7] lut-bit 1111
//   lb(1,2).mode0 control-bit 0000
//
// Patterns are written MSB-first (C_{n-1}..C_0), matching the paper's
// figures and ContextPattern::to_string().
//
// Multi-context netlist (v1) — node lines in DFG index order, so the text
// is canonical: two netlists round-trip to identical text iff their node
// arrays, truth tables, and output lists match positionally (the same
// positional identity cache::diff_netlists and the content hashes use):
//
//   mcfpga-netlist v1
//   contexts 2
//   context 0
//   nodes 3
//   in a
//   in b
//   lut xor 2 0 1 0110
//   outputs 1
//   out 2 y
//   context 1
//   ...
//
// Truth tables are MSB-first BitVector strings (address 2^k-1 first);
// names must be non-empty and whitespace-free (write_netlist enforces it).
#pragma once

#include <iosfwd>
#include <string>

#include "config/bitstream.hpp"
#include "netlist/dfg.hpp"

namespace mcfpga::config {

/// Writes the v1 text format.
void write_bitstream(std::ostream& os, const Bitstream& bitstream);
std::string to_text(const Bitstream& bitstream);

/// Parses the v1 text format; throws InvalidArgument with a line number on
/// any malformed input.
Bitstream read_bitstream(std::istream& is);
Bitstream from_text(const std::string& text);

/// Writes the canonical v1 netlist text; throws InvalidArgument on names
/// the line format cannot carry (empty or containing whitespace).
void write_netlist(std::ostream& os,
                   const netlist::MultiContextNetlist& netlist);
std::string netlist_to_text(const netlist::MultiContextNetlist& netlist);

/// Parses the v1 netlist text; throws InvalidArgument with a line number
/// on any malformed input.
netlist::MultiContextNetlist read_netlist(std::istream& is);
netlist::MultiContextNetlist netlist_from_text(const std::string& text);

}  // namespace mcfpga::config
