#include "config/pattern.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "config/context_id.hpp"

namespace mcfpga::config {

std::string to_string(PatternClass cls) {
  switch (cls) {
    case PatternClass::kConstant:
      return "constant";
    case PatternClass::kSingleBit:
      return "single-bit";
    case PatternClass::kComplex:
      return "complex";
  }
  return "?";
}

ContextPattern::ContextPattern(std::size_t num_contexts, bool value)
    : values_(num_contexts, value) {
  MCFPGA_REQUIRE(is_valid_context_count(num_contexts),
                 "context count must be a power of two in [2, 64]");
}

ContextPattern::ContextPattern(BitVector values) : values_(std::move(values)) {
  MCFPGA_REQUIRE(is_valid_context_count(values_.size()),
                 "context count must be a power of two in [2, 64]");
}

ContextPattern ContextPattern::from_string(const std::string& msb_first) {
  // BitVector::from_string is already MSB-first, matching the paper's
  // (C_{n-1}, ..., C_0) rendering.
  return ContextPattern(BitVector::from_string(msb_first));
}

ContextPattern ContextPattern::for_id_bit(std::size_t num_contexts,
                                          std::size_t bit, bool inverted) {
  MCFPGA_REQUIRE(bit < num_id_bits(num_contexts), "ID bit out of range");
  ContextPattern p(num_contexts);
  for (std::size_t c = 0; c < num_contexts; ++c) {
    p.set_value(c, id_bit_value(c, bit) != inverted);
  }
  return p;
}

void ContextPattern::set_value(std::size_t context, bool value) {
  values_.set(context, value);
}

std::string ContextPattern::to_string() const { return values_.to_string(); }

std::string PatternInfo::describe() const {
  switch (cls) {
    case PatternClass::kConstant:
      return constant_value ? "const 1" : "const 0";
    case PatternClass::kSingleBit:
      return id_bit_name(id_bit, inverted);
    case PatternClass::kComplex:
      return "complex";
  }
  return "?";
}

PatternInfo classify(const ContextPattern& pattern) {
  const std::size_t n = pattern.num_contexts();
  PatternInfo info;

  if (pattern.values().all_equal(false) || pattern.values().all_equal(true)) {
    info.cls = PatternClass::kConstant;
    info.constant_value = pattern.value_in(0);
    return info;
  }

  const std::size_t k = num_id_bits(n);
  for (std::size_t bit = 0; bit < k; ++bit) {
    for (const bool inverted : {false, true}) {
      if (pattern == ContextPattern::for_id_bit(n, bit, inverted)) {
        info.cls = PatternClass::kSingleBit;
        info.id_bit = bit;
        info.inverted = inverted;
        return info;
      }
    }
  }

  info.cls = PatternClass::kComplex;
  return info;
}

std::vector<ContextPattern> all_patterns(std::size_t num_contexts) {
  MCFPGA_REQUIRE(num_contexts <= 16,
                 "exhaustive enumeration limited to 16 contexts");
  const std::size_t count = std::size_t{1} << num_contexts;
  std::vector<ContextPattern> out;
  out.reserve(count);
  for (std::size_t word = 0; word < count; ++word) {
    out.emplace_back(BitVector::from_word(word, num_contexts));
  }
  return out;
}

bool has_period(const ContextPattern& pattern, std::size_t period) {
  const std::size_t n = pattern.num_contexts();
  MCFPGA_REQUIRE(period >= 1 && period <= n, "period out of range");
  if (n % period != 0) {
    return false;
  }
  for (std::size_t c = period; c < n; ++c) {
    if (pattern.value_in(c) != pattern.value_in(c - period)) {
      return false;
    }
  }
  return true;
}

std::size_t smallest_period(const ContextPattern& pattern) {
  const std::size_t n = pattern.num_contexts();
  for (std::size_t period = 1; period < n; ++period) {
    if (n % period == 0 && has_period(pattern, period)) {
      return period;
    }
  }
  return n;
}

}  // namespace mcfpga::config
