#include "config/stats.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace mcfpga::config {

BitstreamStats compute_stats(const Bitstream& bitstream) {
  BitstreamStats stats;
  stats.num_rows = bitstream.num_rows();
  stats.num_contexts = bitstream.num_contexts();
  if (stats.num_rows == 0) {
    return stats;
  }

  std::unordered_map<BitVector, std::size_t, BitVectorHash> groups;
  for (const auto& row : bitstream.rows()) {
    const PatternInfo info = classify(row.pattern);
    switch (info.cls) {
      case PatternClass::kConstant:
        ++stats.constant_rows;
        break;
      case PatternClass::kSingleBit:
        ++stats.single_bit_rows;
        break;
      case PatternClass::kComplex:
        ++stats.complex_rows;
        break;
    }
    ++groups[row.pattern.values()];
    ++stats.period_histogram[smallest_period(row.pattern)];
  }

  stats.changing_row_fraction =
      static_cast<double>(stats.num_rows - stats.constant_rows) /
      static_cast<double>(stats.num_rows);

  // Change rate between consecutive configuration planes.
  double sum = 0.0;
  BitVector prev = bitstream.plane(0);
  for (std::size_t c = 1; c < stats.num_contexts; ++c) {
    BitVector cur = bitstream.plane(c);
    const double rate = static_cast<double>(prev.hamming_distance(cur)) /
                        static_cast<double>(stats.num_rows);
    sum += rate;
    stats.max_change_rate = std::max(stats.max_change_rate, rate);
    prev = std::move(cur);
  }
  stats.avg_change_rate = sum / static_cast<double>(stats.num_contexts - 1);

  stats.distinct_patterns = groups.size();
  for (const auto& [pattern, count] : groups) {
    stats.largest_identical_group =
        std::max(stats.largest_identical_group, count);
    if (count > 1) {
      stats.rows_in_shared_groups += count;
    }
  }
  return stats;
}

void print_stats(std::ostream& os, const BitstreamStats& stats,
                 const std::string& title) {
  os << "== " << title << " ==\n";
  Table t({"metric", "value"});
  t.add_row({"rows (configuration bits)", fmt_count(stats.num_rows)});
  t.add_row({"contexts", std::to_string(stats.num_contexts)});
  t.add_row({"constant rows (Fig.3 class)",
             fmt_count(stats.constant_rows) + "  (" +
                 fmt_percent(stats.constant_fraction()) + ")"});
  t.add_row({"single-ID-bit rows (Fig.4 class)",
             fmt_count(stats.single_bit_rows) + "  (" +
                 fmt_percent(stats.single_bit_fraction()) + ")"});
  t.add_row({"complex rows (Fig.5 class)",
             fmt_count(stats.complex_rows) + "  (" +
                 fmt_percent(stats.complex_fraction()) + ")"});
  t.add_row({"avg consecutive-context change rate",
             fmt_percent(stats.avg_change_rate, 2)});
  t.add_row({"max consecutive-context change rate",
             fmt_percent(stats.max_change_rate, 2)});
  t.add_row({"distinct patterns", fmt_count(stats.distinct_patterns)});
  t.add_row(
      {"largest identical-row group", fmt_count(stats.largest_identical_group)});
  t.add_row({"rows sharing a pattern", fmt_count(stats.rows_in_shared_groups)});
  for (const auto& [period, count] : stats.period_histogram) {
    t.add_row({"rows with smallest period " + std::to_string(period),
               fmt_count(count)});
  }
  t.print(os);
}

Bitstream paper_table1_example() {
  // Table 1 lists contexts left-to-right as (C3, C2, C1, C0); the rows below
  // are transcribed verbatim.  G5..G8 are not shown in the paper's table;
  // the table prints only the five switches it discusses.
  Bitstream bs(4);
  const auto add = [&bs](const std::string& name, const std::string& msb) {
    bs.add_row(name, ResourceKind::kRoutingSwitch,
               ContextPattern::from_string(msb));
  };
  add("G1", "1000");  // complex: on only in context 3
  add("G2", "0101");  // regular: repeating (0,1) -> equals ~S0
  add("G3", "0000");  // self-redundant: always off
  add("G4", "0101");  // identical to G2
  add("G9", "1111");  // self-redundant: always on
  return bs;
}

}  // namespace mcfpga::config
