// Multi-context bitstream container.
//
// A Bitstream is the set of configuration bits of a fabric across all
// contexts: one ContextPattern per configuration bit ("row", in the language
// of the paper's Table 1), tagged with the resource that owns it.  Both the
// conventional fabric (which stores every row in n memory bits) and the
// proposed fabric (which synthesizes each row into switch elements) consume
// the same Bitstream, so the two area evaluations are guaranteed to describe
// the same design.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/bitvector.hpp"
#include "config/pattern.hpp"

namespace mcfpga::config {

/// What kind of fabric resource a configuration bit controls.
enum class ResourceKind {
  kRoutingSwitch,  ///< Pass-gate in a switch block / diamond switch.
  kLutBit,         ///< One truth-table bit of a logic-block LUT plane.
  kControlBit,     ///< LB size-controller / misc control configuration.
};

std::string to_string(ResourceKind kind);

/// One configuration bit and its values across contexts.
struct BitstreamRow {
  std::string name;  ///< e.g. "sb(3,4).G9" or "lb(1,2).lut0[13]".
  ResourceKind kind = ResourceKind::kRoutingSwitch;
  ContextPattern pattern;
};

class Bitstream {
 public:
  /// Default: an empty 2-context bitstream (placeholder for assignment).
  Bitstream() : num_contexts_(2) {}
  explicit Bitstream(std::size_t num_contexts);

  std::size_t num_contexts() const { return num_contexts_; }
  std::size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Appends a row; its pattern must span exactly num_contexts() contexts.
  /// Returns the row index.
  std::size_t add_row(std::string name, ResourceKind kind,
                      ContextPattern pattern);

  const BitstreamRow& row(std::size_t index) const;
  const std::vector<BitstreamRow>& rows() const { return rows_; }

  /// Number of rows of a given resource kind.
  std::size_t count_kind(ResourceKind kind) const;

  /// The full configuration plane of one context: bit i = value of row i.
  BitVector plane(std::size_t context) const;

  /// Concatenates another bitstream's rows (context counts must match).
  void append(const Bitstream& other);

 private:
  std::size_t num_contexts_;
  std::vector<BitstreamRow> rows_;
};

}  // namespace mcfpga::config
