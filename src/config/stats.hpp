// Redundancy and regularity statistics over a multi-context bitstream
// (paper Section 2, Table 1, and the <3-5% change-rate assumption from
// [Kennedy, FPL'03] used throughout the evaluation).
//
// Three forms of structure are quantified:
//  * self-redundancy   — rows whose value never changes across contexts
//                        (Table 1: G3, G9);
//  * inter-row redundancy — distinct rows with identical patterns
//                        (Table 1: G2 == G4);
//  * regularity        — periodic patterns such as (0,1,0,1) that equal a
//                        context-ID bit and are thus hardware-generable
//                        (Table 1: G2/G4 "repeating bits in an order (0,1)").
#pragma once

#include <cstddef>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "config/bitstream.hpp"
#include "config/pattern.hpp"

namespace mcfpga::config {

struct BitstreamStats {
  std::size_t num_rows = 0;
  std::size_t num_contexts = 0;

  /// Rows per pattern class (Figs. 3-5 taxonomy).
  std::size_t constant_rows = 0;
  std::size_t single_bit_rows = 0;
  std::size_t complex_rows = 0;

  /// Fraction of rows that are NOT constant (i.e. change at least once).
  double changing_row_fraction = 0.0;

  /// Average fraction of bits that differ between consecutive contexts
  /// (context c vs c+1, averaged over c; the paper's "change rate").
  double avg_change_rate = 0.0;
  /// Worst consecutive-context change rate.
  double max_change_rate = 0.0;

  /// Number of distinct patterns and the size of the largest identical group.
  std::size_t distinct_patterns = 0;
  std::size_t largest_identical_group = 0;
  /// Rows that share their pattern with at least one other row.
  std::size_t rows_in_shared_groups = 0;

  /// Histogram of smallest periods (regularity): period -> row count.
  std::map<std::size_t, std::size_t> period_histogram;

  double constant_fraction() const {
    return num_rows == 0 ? 0.0
                         : static_cast<double>(constant_rows) / num_rows;
  }
  double single_bit_fraction() const {
    return num_rows == 0 ? 0.0
                         : static_cast<double>(single_bit_rows) / num_rows;
  }
  double complex_fraction() const {
    return num_rows == 0 ? 0.0
                         : static_cast<double>(complex_rows) / num_rows;
  }
};

/// Computes all statistics in one pass over the bitstream.
BitstreamStats compute_stats(const Bitstream& bitstream);

/// Pretty-prints the statistics as a report block.
void print_stats(std::ostream& os, const BitstreamStats& stats,
                 const std::string& title);

/// Builds the paper's Table 1 example verbatim (switches G1..G9 of Fig. 1's
/// switch block, 4 contexts).  Used by tests and the Table-1 bench as a
/// ground-truth fixture.
Bitstream paper_table1_example();

}  // namespace mcfpga::config
