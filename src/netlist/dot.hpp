// Graphviz DOT export of multi-context DFGs, with shared classes rendered
// as merged nodes (the paper's Fig. 14a view).
#pragma once

#include <string>

#include "netlist/dfg.hpp"
#include "netlist/sharing.hpp"

namespace mcfpga::netlist {

/// DOT text of a single context's DFG.
std::string to_dot(const Dfg& dfg, const std::string& graph_name);

/// DOT text of the whole multi-context netlist with one cluster per context
/// and shared classes annotated (peripheries=2).
std::string to_dot_merged(const MultiContextNetlist& netlist,
                          const SharingAnalysis& sharing);

}  // namespace mcfpga::netlist
