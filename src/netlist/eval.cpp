#include "netlist/eval.hpp"

#include <vector>

#include "common/error.hpp"

namespace mcfpga::netlist {

namespace {
std::vector<bool> evaluate_all(const Dfg& dfg, const ValueMap& inputs) {
  std::vector<bool> value(dfg.num_nodes(), false);
  for (std::size_t i = 0; i < dfg.num_nodes(); ++i) {
    const auto& n = dfg.node(static_cast<NodeRef>(i));
    if (n.type == NodeType::kPrimaryInput) {
      const auto it = inputs.find(n.name);
      value[i] = it != inputs.end() && it->second;
    } else {
      std::size_t address = 0;
      for (std::size_t b = 0; b < n.fanins.size(); ++b) {
        if (value[static_cast<std::size_t>(n.fanins[b])]) {
          address |= std::size_t{1} << b;
        }
      }
      value[i] = n.truth_table.get(address);
    }
  }
  return value;
}
}  // namespace

ValueMap evaluate(const Dfg& dfg, const ValueMap& inputs) {
  const std::vector<bool> value = evaluate_all(dfg, inputs);
  ValueMap out;
  for (const auto& o : dfg.outputs()) {
    out[o.name] = value[static_cast<std::size_t>(o.node)];
  }
  return out;
}

bool evaluate_node(const Dfg& dfg, NodeRef node, const ValueMap& inputs) {
  MCFPGA_REQUIRE(
      node >= 0 && static_cast<std::size_t>(node) < dfg.num_nodes(),
      "node out of range");
  return evaluate_all(dfg, inputs)[static_cast<std::size_t>(node)];
}

}  // namespace mcfpga::netlist
