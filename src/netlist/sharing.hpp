// Cross-context node-sharing analysis (paper Fig. 14a).
//
// Two LUT operations in different contexts are SHARABLE when they compute
// the same function of the same signals — structurally: equal truth tables
// and fanins that are themselves pairwise sharable (primary inputs share by
// name).  Sharable nodes collapse to one "shared class"; mapping a class
// once into a single configuration plane is what saves the memory that a
// globally controlled logic block would duplicate (Fig. 13's LUT3 storing
// O3 twice).
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/dfg.hpp"

namespace mcfpga::netlist {

/// One equivalence class of structurally identical nodes across contexts.
struct SharedClass {
  std::size_t id = 0;
  /// (context, node) members; at most one member per context.
  std::vector<std::pair<std::size_t, NodeRef>> members;
  /// Arity of the class function.
  std::size_t arity = 0;

  bool is_shared() const { return members.size() > 1; }
};

struct SharingAnalysis {
  std::vector<SharedClass> classes;
  /// class_of[context][node] = class id (primary inputs get classes too).
  std::vector<std::vector<std::size_t>> class_of;

  /// Number of LUT-op classes with >1 member (the merge wins).
  std::size_t shared_lut_classes() const;
  /// LUT evaluations saved by merging: sum over classes of (members - 1).
  std::size_t merged_lut_ops() const;
};

/// Runs structural hashing over all contexts of the netlist.
SharingAnalysis analyze_sharing(const MultiContextNetlist& netlist);

}  // namespace mcfpga::netlist
