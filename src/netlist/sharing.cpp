#include "netlist/sharing.hpp"

#include <map>
#include <string>
#include <unordered_map>

#include "common/error.hpp"

namespace mcfpga::netlist {

namespace {
/// Structural key: primary inputs key on their name; LUT ops key on the
/// truth table plus the class ids of their fanins.
struct NodeKey {
  bool is_input = false;
  std::string input_name;
  std::string tt;  // truth-table string (canonical)
  std::vector<std::size_t> fanin_classes;

  bool operator<(const NodeKey& o) const {
    return std::tie(is_input, input_name, tt, fanin_classes) <
           std::tie(o.is_input, o.input_name, o.tt, o.fanin_classes);
  }
};
}  // namespace

std::size_t SharingAnalysis::shared_lut_classes() const {
  std::size_t n = 0;
  for (const auto& cls : classes) {
    if (cls.arity > 0 && cls.is_shared()) {
      ++n;
    }
  }
  return n;
}

std::size_t SharingAnalysis::merged_lut_ops() const {
  std::size_t n = 0;
  for (const auto& cls : classes) {
    if (cls.arity > 0 && cls.is_shared()) {
      n += cls.members.size() - 1;
    }
  }
  return n;
}

SharingAnalysis analyze_sharing(const MultiContextNetlist& netlist) {
  SharingAnalysis result;
  result.class_of.resize(netlist.num_contexts());

  std::map<NodeKey, std::size_t> key_to_class;

  for (std::size_t c = 0; c < netlist.num_contexts(); ++c) {
    const Dfg& dfg = netlist.context(c);
    result.class_of[c].resize(dfg.num_nodes());
    for (std::size_t i = 0; i < dfg.num_nodes(); ++i) {
      const auto& n = dfg.node(static_cast<NodeRef>(i));
      NodeKey key;
      if (n.type == NodeType::kPrimaryInput) {
        key.is_input = true;
        key.input_name = n.name;
      } else {
        key.tt = n.truth_table.to_string();
        key.fanin_classes.reserve(n.fanins.size());
        for (const NodeRef f : n.fanins) {
          key.fanin_classes.push_back(
              result.class_of[c][static_cast<std::size_t>(f)]);
        }
      }
      const auto [it, inserted] =
          key_to_class.emplace(std::move(key), result.classes.size());
      if (inserted) {
        SharedClass cls;
        cls.id = result.classes.size();
        cls.arity = n.fanins.size();
        result.classes.push_back(std::move(cls));
      }
      const std::size_t cls_id = it->second;
      result.class_of[c][i] = cls_id;
      auto& members = result.classes[cls_id].members;
      // A context evaluates each class at most once (hash-consing within a
      // context also deduplicates identical nodes).
      if (members.empty() || members.back().first != c) {
        members.emplace_back(c, static_cast<NodeRef>(i));
      }
    }
  }
  return result;
}

}  // namespace mcfpga::netlist
