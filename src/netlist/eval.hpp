// Reference (software) evaluation of DFGs.  The fabric simulator is always
// cross-checked against these results — they are the functional oracle for
// the whole flow.
#pragma once

#include <map>
#include <string>

#include "netlist/dfg.hpp"

namespace mcfpga::netlist {

/// Named input/output value sets.
using ValueMap = std::map<std::string, bool>;

/// Evaluates one context's DFG on named primary-input values.
/// Missing inputs default to 0; extra entries are ignored.
ValueMap evaluate(const Dfg& dfg, const ValueMap& inputs);

/// Evaluates a single node (by ref) under the given primary inputs.
bool evaluate_node(const Dfg& dfg, NodeRef node, const ValueMap& inputs);

}  // namespace mcfpga::netlist
