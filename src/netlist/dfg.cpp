#include "netlist/dfg.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"

namespace mcfpga::netlist {

NodeRef Dfg::add_input(std::string name) {
  MCFPGA_REQUIRE(num_inputs_ == nodes_.size(),
                 "primary inputs must be added before LUT operations");
  DfgNode n;
  n.type = NodeType::kPrimaryInput;
  n.name = std::move(name);
  nodes_.push_back(std::move(n));
  ++num_inputs_;
  return static_cast<NodeRef>(nodes_.size() - 1);
}

NodeRef Dfg::add_lut(std::string name, std::vector<NodeRef> fanins,
                     BitVector truth_table) {
  MCFPGA_REQUIRE(!fanins.empty(), "a LUT operation needs at least one fanin");
  MCFPGA_REQUIRE(fanins.size() <= 16, "fanin arity limited to 16");
  for (const NodeRef f : fanins) {
    MCFPGA_REQUIRE(f >= 0 && static_cast<std::size_t>(f) < nodes_.size(),
                   "fanin must reference an existing node");
  }
  MCFPGA_REQUIRE(truth_table.size() == (std::size_t{1} << fanins.size()),
                 "truth table must have 2^arity bits");
  DfgNode n;
  n.type = NodeType::kLutOp;
  n.name = std::move(name);
  n.fanins = std::move(fanins);
  n.truth_table = std::move(truth_table);
  nodes_.push_back(std::move(n));
  return static_cast<NodeRef>(nodes_.size() - 1);
}

void Dfg::mark_output(NodeRef node, std::string name) {
  MCFPGA_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < nodes_.size(),
                 "output must reference an existing node");
  outputs_.push_back(DfgOutput{node, std::move(name)});
}

const DfgNode& Dfg::node(NodeRef id) const {
  MCFPGA_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
                 "node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

std::size_t Dfg::max_arity() const {
  std::size_t a = 0;
  for (const auto& n : nodes_) {
    a = std::max(a, n.fanins.size());
  }
  return a;
}

std::size_t Dfg::depth() const {
  std::vector<std::size_t> level(nodes_.size(), 0);
  std::size_t deepest = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].type == NodeType::kLutOp) {
      std::size_t in_level = 0;
      for (const NodeRef f : nodes_[i].fanins) {
        in_level = std::max(in_level, level[static_cast<std::size_t>(f)]);
      }
      level[i] = in_level + 1;
      deepest = std::max(deepest, level[i]);
    }
  }
  return deepest;
}

void Dfg::validate() const {
  std::unordered_set<std::string> names;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& n = nodes_[i];
    MCFPGA_REQUIRE(!n.name.empty(), "node names must be non-empty");
    MCFPGA_REQUIRE(names.insert(n.name).second,
                   "node names must be unique within a context");
    if (n.type == NodeType::kPrimaryInput) {
      MCFPGA_REQUIRE(i < num_inputs_, "inputs must precede LUT ops");
      MCFPGA_REQUIRE(n.fanins.empty() && n.truth_table.empty(),
                     "inputs carry no fanins or truth table");
    } else {
      MCFPGA_REQUIRE(
          n.truth_table.size() == (std::size_t{1} << n.fanins.size()),
          "truth table size must be 2^arity");
      for (const NodeRef f : n.fanins) {
        MCFPGA_REQUIRE(static_cast<std::size_t>(f) < i,
                       "fanins must precede their user (topological order)");
      }
    }
  }
  for (const auto& out : outputs_) {
    MCFPGA_REQUIRE(
        out.node >= 0 && static_cast<std::size_t>(out.node) < nodes_.size(),
        "output references a missing node");
  }
}

MultiContextNetlist::MultiContextNetlist(std::size_t num_contexts)
    : contexts_(num_contexts) {
  MCFPGA_REQUIRE(num_contexts >= 1, "need at least one context");
}

Dfg& MultiContextNetlist::context(std::size_t c) {
  MCFPGA_REQUIRE(c < contexts_.size(), "context out of range");
  return contexts_[c];
}

const Dfg& MultiContextNetlist::context(std::size_t c) const {
  MCFPGA_REQUIRE(c < contexts_.size(), "context out of range");
  return contexts_[c];
}

std::vector<std::string> MultiContextNetlist::all_input_names() const {
  std::vector<std::string> names;
  std::unordered_set<std::string> seen;
  for (const auto& dfg : contexts_) {
    for (const auto& n : dfg.nodes()) {
      if (n.type == NodeType::kPrimaryInput && seen.insert(n.name).second) {
        names.push_back(n.name);
      }
    }
  }
  return names;
}

std::vector<std::string> MultiContextNetlist::all_output_names() const {
  std::vector<std::string> names;
  std::unordered_set<std::string> seen;
  for (const auto& dfg : contexts_) {
    for (const auto& out : dfg.outputs()) {
      if (seen.insert(out.name).second) {
        names.push_back(out.name);
      }
    }
  }
  return names;
}

std::size_t MultiContextNetlist::total_lut_ops() const {
  std::size_t n = 0;
  for (const auto& dfg : contexts_) {
    n += dfg.num_lut_ops();
  }
  return n;
}

void MultiContextNetlist::validate() const {
  for (const auto& dfg : contexts_) {
    dfg.validate();
  }
}

}  // namespace mcfpga::netlist
