// Multi-context data-flow graphs (paper Sec. 4, Figs. 13-14).
//
// A Dfg is one context's combinational netlist: primary inputs plus
// truth-table ("LUT operation") nodes, with designated primary outputs.
// A MultiContextNetlist holds one Dfg per context; primary inputs are
// matched across contexts BY NAME, which is what makes cross-context node
// sharing (Fig. 14's O2/O3 -> O5 merge) well defined.
//
// Nodes must be added fanin-first, so node order is a topological order by
// construction; validate() re-checks every structural invariant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvector.hpp"

namespace mcfpga::netlist {

using NodeRef = std::int32_t;
constexpr NodeRef kNoNode = -1;

enum class NodeType : std::uint8_t {
  kPrimaryInput,
  kLutOp,
};

struct DfgNode {
  NodeType type = NodeType::kLutOp;
  std::string name;
  std::vector<NodeRef> fanins;  ///< Empty for primary inputs.
  /// Truth table over the fanins: bit at address a = output when fanin i
  /// carries bit i of a.  Size 2^fanins.size().  Empty for primary inputs.
  BitVector truth_table;
};

struct DfgOutput {
  NodeRef node = kNoNode;
  std::string name;
};

class Dfg {
 public:
  NodeRef add_input(std::string name);
  /// Adds a LUT operation; all fanins must already exist.
  NodeRef add_lut(std::string name, std::vector<NodeRef> fanins,
                  BitVector truth_table);
  void mark_output(NodeRef node, std::string name);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_inputs() const { return num_inputs_; }
  std::size_t num_lut_ops() const { return nodes_.size() - num_inputs_; }
  const DfgNode& node(NodeRef id) const;
  const std::vector<DfgNode>& nodes() const { return nodes_; }
  const std::vector<DfgOutput>& outputs() const { return outputs_; }

  /// Largest fanin arity over all LUT ops.
  std::size_t max_arity() const;
  /// Logic depth: LUT ops on the longest input-to-output path.
  std::size_t depth() const;

  /// Re-checks all invariants; throws InvalidArgument on violation.
  void validate() const;

 private:
  std::vector<DfgNode> nodes_;
  std::vector<DfgOutput> outputs_;
  std::size_t num_inputs_ = 0;
};

/// One Dfg per context.  Input names are the cross-context identity.
class MultiContextNetlist {
 public:
  /// Default: a single empty context (placeholder for later assignment).
  MultiContextNetlist() : contexts_(1) {}
  explicit MultiContextNetlist(std::size_t num_contexts);

  std::size_t num_contexts() const { return contexts_.size(); }
  Dfg& context(std::size_t c);
  const Dfg& context(std::size_t c) const;

  /// Union of primary-input names over all contexts, in first-seen order.
  std::vector<std::string> all_input_names() const;
  /// Union of primary-output names over all contexts, in first-seen order.
  std::vector<std::string> all_output_names() const;

  /// Totals across contexts (for reports).
  std::size_t total_lut_ops() const;

  void validate() const;

 private:
  std::vector<Dfg> contexts_;
};

}  // namespace mcfpga::netlist
