#include "netlist/dot.hpp"

#include <sstream>

namespace mcfpga::netlist {

namespace {
std::string node_id(std::size_t context, NodeRef node) {
  return "c" + std::to_string(context) + "_n" + std::to_string(node);
}

void emit_context(std::ostream& os, const Dfg& dfg, std::size_t context,
                  const SharingAnalysis* sharing) {
  for (std::size_t i = 0; i < dfg.num_nodes(); ++i) {
    const auto& n = dfg.node(static_cast<NodeRef>(i));
    os << "    " << node_id(context, static_cast<NodeRef>(i)) << " [label=\""
       << n.name << "\"";
    if (n.type == NodeType::kPrimaryInput) {
      os << ", shape=triangle";
    } else {
      os << ", shape=box";
      if (sharing != nullptr) {
        const std::size_t cls = sharing->class_of[context][i];
        if (sharing->classes[cls].is_shared()) {
          os << ", peripheries=2, style=filled, fillcolor=lightyellow";
        }
      }
    }
    os << "];\n";
  }
  for (std::size_t i = 0; i < dfg.num_nodes(); ++i) {
    const auto& n = dfg.node(static_cast<NodeRef>(i));
    for (const NodeRef f : n.fanins) {
      os << "    " << node_id(context, f) << " -> "
         << node_id(context, static_cast<NodeRef>(i)) << ";\n";
    }
  }
  for (const auto& out : dfg.outputs()) {
    const std::string oid =
        "c" + std::to_string(context) + "_out_" + out.name;
    os << "    " << oid << " [label=\"" << out.name
       << "\", shape=invtriangle];\n";
    os << "    " << node_id(context, out.node) << " -> " << oid << ";\n";
  }
}
}  // namespace

std::string to_dot(const Dfg& dfg, const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n  rankdir=TB;\n";
  emit_context(os, dfg, 0, nullptr);
  os << "}\n";
  return os.str();
}

std::string to_dot_merged(const MultiContextNetlist& netlist,
                          const SharingAnalysis& sharing) {
  std::ostringstream os;
  os << "digraph merged {\n  rankdir=TB;\n";
  for (std::size_t c = 0; c < netlist.num_contexts(); ++c) {
    os << "  subgraph cluster_ctx" << c << " {\n    label=\"context " << c
       << "\";\n";
    emit_context(os, netlist.context(c), c, &sharing);
    os << "  }\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace mcfpga::netlist
