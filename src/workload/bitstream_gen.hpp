// Synthetic bitstream generation with the paper's statistical knobs.
//
// The Sec. 5 evaluation is driven by one number: the fraction of
// configuration bits that change between contexts (assumed 5%, citing the
// <3% measurement of [Kennedy FPL'03]).  These generators produce
// bitstreams whose measured change rate matches the requested one, so the
// area benches can sweep it.
#pragma once

#include <cstdint>
#include <vector>

#include "config/bitstream.hpp"

namespace mcfpga::workload {

struct BitstreamGenParams {
  std::size_t rows = 1000;
  std::size_t num_contexts = 4;
  /// Probability a row is ON in context 0 (routing fabrics are sparse).
  double on_probability = 0.12;
  /// Per-transition flip probability: each bit flips with this probability
  /// between consecutive contexts (the paper's "change rate").
  double change_rate = 0.05;
  /// Fraction of rows overwritten with a random ID-bit pattern (Sj / ~Sj):
  /// injected "regularity" in the paper's Table-1 sense.
  double regularity_fraction = 0.0;
  std::uint64_t seed = 1;
};

/// One flat bitstream with the requested statistics.
config::Bitstream generate_bitstream(const BitstreamGenParams& params);

/// The same rows chopped into blocks of `block_rows` (one Bitstream per
/// switch block, as the per-block decoder-sharing area model consumes).
std::vector<config::Bitstream> generate_blocks(
    const BitstreamGenParams& params, std::size_t block_rows);

}  // namespace mcfpga::workload
