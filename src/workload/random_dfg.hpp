// Random multi-context DFG generation with a controllable cross-context
// sharing fraction — the knob the adaptive-logic-block evaluation sweeps.
#pragma once

#include <cstdint>

#include "netlist/dfg.hpp"

namespace mcfpga::workload {

struct RandomDfgParams {
  std::size_t num_inputs = 8;
  std::size_t num_nodes = 24;
  std::size_t max_arity = 4;
  std::uint64_t seed = 1;
};

/// One random combinational DFG; every sink node becomes an output.
netlist::Dfg random_dfg(const RandomDfgParams& params);

struct RandomMultiContextParams {
  RandomDfgParams base{};
  std::size_t num_contexts = 4;
  /// Fraction of context-0's node prefix cloned verbatim into every other
  /// context (these become shared classes); the rest of each context is
  /// fresh random logic.
  double share_fraction = 0.3;
};

netlist::MultiContextNetlist random_multi_context(
    const RandomMultiContextParams& params);

}  // namespace mcfpga::workload
