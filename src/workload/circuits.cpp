#include "workload/circuits.hpp"

#include <vector>

#include "common/error.hpp"

namespace mcfpga::workload {

namespace {

using netlist::Dfg;
using netlist::NodeRef;

BitVector tt_from_fn(std::size_t arity, bool (*fn)(std::size_t)) {
  BitVector tt(std::size_t{1} << arity);
  for (std::size_t a = 0; a < tt.size(); ++a) {
    tt.set(a, fn(a));
  }
  return tt;
}

BitVector tt_xor2() {
  return tt_from_fn(2, [](std::size_t a) { return ((a & 1) ^ ((a >> 1) & 1)) != 0; });
}
BitVector tt_xor3() {
  return tt_from_fn(
      3, [](std::size_t a) { return ((a & 1) ^ ((a >> 1) & 1) ^ ((a >> 2) & 1)) != 0; });
}
BitVector tt_maj3() {
  return tt_from_fn(3, [](std::size_t a) {
    return (static_cast<int>(a & 1) + static_cast<int>((a >> 1) & 1) +
            static_cast<int>((a >> 2) & 1)) >= 2;
  });
}
BitVector tt_and2() {
  return tt_from_fn(2, [](std::size_t a) { return (a & 3) == 3; });
}
BitVector tt_xnor2() {
  return tt_from_fn(2, [](std::size_t a) { return ((a & 1) ^ ((a >> 1) & 1)) == 0; });
}
BitVector tt_mux3() {
  // out = in2 ? in1 : in0
  return tt_from_fn(3, [](std::size_t a) {
    return ((a >> 2) & 1) != 0 ? ((a >> 1) & 1) != 0 : (a & 1) != 0;
  });
}

}  // namespace

Dfg ripple_carry_adder(std::size_t bits, const std::string& prefix) {
  MCFPGA_REQUIRE(bits >= 1, "adder needs at least one bit");
  Dfg dfg;
  std::vector<NodeRef> a(bits);
  std::vector<NodeRef> b(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    a[i] = dfg.add_input(prefix + "a" + std::to_string(i));
  }
  for (std::size_t i = 0; i < bits; ++i) {
    b[i] = dfg.add_input(prefix + "b" + std::to_string(i));
  }
  const NodeRef cin = dfg.add_input(prefix + "cin");

  NodeRef carry = cin;
  for (std::size_t i = 0; i < bits; ++i) {
    const NodeRef sum = dfg.add_lut(prefix + "sum" + std::to_string(i),
                                    {a[i], b[i], carry}, tt_xor3());
    carry = dfg.add_lut(prefix + "carry" + std::to_string(i),
                        {a[i], b[i], carry}, tt_maj3());
    dfg.mark_output(sum, prefix + "s" + std::to_string(i));
  }
  dfg.mark_output(carry, prefix + "cout");
  dfg.validate();
  return dfg;
}

Dfg parity_tree(std::size_t inputs, const std::string& prefix) {
  MCFPGA_REQUIRE(inputs >= 2, "parity tree needs >= 2 inputs");
  Dfg dfg;
  std::vector<NodeRef> layer(inputs);
  for (std::size_t i = 0; i < inputs; ++i) {
    layer[i] = dfg.add_input(prefix + "x" + std::to_string(i));
  }
  std::size_t serial = 0;
  while (layer.size() > 1) {
    std::vector<NodeRef> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(dfg.add_lut(prefix + "p" + std::to_string(serial++),
                                 {layer[i], layer[i + 1]}, tt_xor2()));
    }
    if (layer.size() % 2 == 1) {
      next.push_back(layer.back());
    }
    layer = std::move(next);
  }
  dfg.mark_output(layer[0], prefix + "parity");
  dfg.validate();
  return dfg;
}

Dfg comparator(std::size_t bits, const std::string& prefix) {
  MCFPGA_REQUIRE(bits >= 1, "comparator needs at least one bit");
  Dfg dfg;
  std::vector<NodeRef> a(bits);
  std::vector<NodeRef> b(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    a[i] = dfg.add_input(prefix + "a" + std::to_string(i));
  }
  for (std::size_t i = 0; i < bits; ++i) {
    b[i] = dfg.add_input(prefix + "b" + std::to_string(i));
  }
  NodeRef eq = dfg.add_lut(prefix + "eq0", {a[0], b[0]}, tt_xnor2());
  for (std::size_t i = 1; i < bits; ++i) {
    const NodeRef bit_eq =
        dfg.add_lut(prefix + "beq" + std::to_string(i), {a[i], b[i]},
                    tt_xnor2());
    eq = dfg.add_lut(prefix + "eq" + std::to_string(i), {eq, bit_eq},
                     tt_and2());
  }
  dfg.mark_output(eq, prefix + "eq");
  dfg.validate();
  return dfg;
}

Dfg array_multiplier(std::size_t bits, const std::string& prefix) {
  MCFPGA_REQUIRE(bits >= 1 && bits <= 8, "multiplier bits in [1, 8]");
  Dfg dfg;
  std::vector<NodeRef> a(bits);
  std::vector<NodeRef> b(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    a[i] = dfg.add_input(prefix + "a" + std::to_string(i));
  }
  for (std::size_t i = 0; i < bits; ++i) {
    b[i] = dfg.add_input(prefix + "b" + std::to_string(i));
  }
  // Partial products.
  std::vector<std::vector<NodeRef>> pp(bits, std::vector<NodeRef>(bits));
  for (std::size_t i = 0; i < bits; ++i) {
    for (std::size_t j = 0; j < bits; ++j) {
      pp[i][j] = dfg.add_lut(
          prefix + "pp" + std::to_string(i) + "_" + std::to_string(j),
          {a[j], b[i]}, tt_and2());
    }
  }
  // Ripple accumulation of shifted rows.  Before adding row i, `acc` holds
  // weights (i-1)..(i-1)+acc.size()-1; the low bit is final and the rest is
  // ripple-added to row i's partial products.
  std::vector<NodeRef> acc(pp[0]);  // row 0: weights 0..bits-1
  std::size_t serial = 0;
  std::vector<NodeRef> result;
  for (std::size_t i = 1; i < bits; ++i) {
    result.push_back(acc[0]);  // weight i-1 is final
    const std::vector<NodeRef> rest(acc.begin() + 1, acc.end());
    std::vector<NodeRef> next;
    NodeRef carry = netlist::kNoNode;
    const std::size_t lanes = std::max(rest.size(), pp[i].size());
    for (std::size_t j = 0; j < lanes; ++j) {
      std::vector<NodeRef> terms;
      if (j < rest.size()) {
        terms.push_back(rest[j]);
      }
      if (j < pp[i].size()) {
        terms.push_back(pp[i][j]);
      }
      if (carry != netlist::kNoNode) {
        terms.push_back(carry);
        carry = netlist::kNoNode;
      }
      if (terms.size() == 3) {
        next.push_back(dfg.add_lut(prefix + "fa_s" + std::to_string(serial),
                                   terms, tt_xor3()));
        carry = dfg.add_lut(prefix + "fa_c" + std::to_string(serial++),
                            terms, tt_maj3());
      } else if (terms.size() == 2) {
        next.push_back(dfg.add_lut(prefix + "ha_s" + std::to_string(serial),
                                   terms, tt_xor2()));
        carry = dfg.add_lut(prefix + "ha_c" + std::to_string(serial++),
                            terms, tt_and2());
      } else {
        next.push_back(terms[0]);
      }
    }
    if (carry != netlist::kNoNode) {
      next.push_back(carry);
    }
    acc = std::move(next);
  }
  // Remaining accumulated bits are the high outputs.
  for (const NodeRef node : acc) {
    result.push_back(node);
  }
  for (std::size_t w = 0; w < result.size(); ++w) {
    dfg.mark_output(result[w], prefix + "p" + std::to_string(w));
  }
  dfg.validate();
  return dfg;
}

Dfg crc_step(std::size_t width, std::uint64_t poly,
             const std::string& prefix) {
  MCFPGA_REQUIRE(width >= 2 && width <= 64, "CRC width in [2, 64]");
  Dfg dfg;
  std::vector<NodeRef> state(width);
  for (std::size_t i = 0; i < width; ++i) {
    state[i] = dfg.add_input(prefix + "s" + std::to_string(i));
  }
  const NodeRef din = dfg.add_input(prefix + "din");
  // feedback = state[width-1] XOR din.
  const NodeRef fb =
      dfg.add_lut(prefix + "fb", {state[width - 1], din}, tt_xor2());
  // next[0] = fb; next[i] = state[i-1] XOR (poly_i ? fb : 0).
  dfg.mark_output(fb, prefix + "n0");
  for (std::size_t i = 1; i < width; ++i) {
    if ((poly >> i) & 1) {
      const NodeRef n = dfg.add_lut(prefix + "nx" + std::to_string(i),
                                    {state[i - 1], fb}, tt_xor2());
      dfg.mark_output(n, prefix + "n" + std::to_string(i));
    } else {
      // Pass-through: a 1-input buffer LUT keeps the DFG uniform.
      BitVector buf(2);
      buf.set(1, true);
      const NodeRef n = dfg.add_lut(prefix + "nb" + std::to_string(i),
                                    {state[i - 1]}, buf);
      dfg.mark_output(n, prefix + "n" + std::to_string(i));
    }
  }
  dfg.validate();
  return dfg;
}

Dfg mux_tree(std::size_t sel_bits, const std::string& prefix) {
  MCFPGA_REQUIRE(sel_bits >= 1 && sel_bits <= 6, "sel bits in [1, 6]");
  Dfg dfg;
  const std::size_t leaves = std::size_t{1} << sel_bits;
  std::vector<NodeRef> sel(sel_bits);
  for (std::size_t i = 0; i < sel_bits; ++i) {
    sel[i] = dfg.add_input(prefix + "sel" + std::to_string(i));
  }
  std::vector<NodeRef> layer(leaves);
  for (std::size_t i = 0; i < leaves; ++i) {
    layer[i] = dfg.add_input(prefix + "d" + std::to_string(i));
  }
  std::size_t serial = 0;
  for (std::size_t level = 0; level < sel_bits; ++level) {
    std::vector<NodeRef> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(dfg.add_lut(prefix + "m" + std::to_string(serial++),
                                 {layer[i], layer[i + 1], sel[level]},
                                 tt_mux3()));
    }
    layer = std::move(next);
  }
  dfg.mark_output(layer[0], prefix + "out");
  dfg.validate();
  return dfg;
}

netlist::MultiContextNetlist pipeline_workload(std::size_t num_contexts,
                                               std::size_t data_bits) {
  MCFPGA_REQUIRE(num_contexts >= 2, "pipeline needs >= 2 contexts");
  MCFPGA_REQUIRE(data_bits >= 2, "pipeline needs >= 2 data bits");
  netlist::MultiContextNetlist nl(num_contexts);
  for (std::size_t c = 0; c < num_contexts; ++c) {
    // Shared front-end in every context: bitwise-equal comparators over the
    // same named inputs (structurally identical across contexts -> shared
    // classes).  Stage-specific back-end: stage index rotates the circuit.
    Dfg& dfg = nl.context(c);
    std::vector<NodeRef> a(data_bits);
    std::vector<NodeRef> b(data_bits);
    for (std::size_t i = 0; i < data_bits; ++i) {
      a[i] = dfg.add_input("a" + std::to_string(i));
    }
    for (std::size_t i = 0; i < data_bits; ++i) {
      b[i] = dfg.add_input("b" + std::to_string(i));
    }
    // Shared front-end nodes.
    std::vector<NodeRef> eq(data_bits);
    for (std::size_t i = 0; i < data_bits; ++i) {
      eq[i] = dfg.add_lut("feq" + std::to_string(i), {a[i], b[i]},
                          tt_xnor2());
    }
    // Stage-specific reduction: stage c starts folding at offset c.
    NodeRef acc = eq[c % data_bits];
    std::size_t serial = 0;
    for (std::size_t i = 1; i < data_bits; ++i) {
      const NodeRef next = eq[(c + i) % data_bits];
      acc = dfg.add_lut("st" + std::to_string(c) + "_" +
                            std::to_string(serial++),
                        {acc, next}, (c % 2 == 0) ? tt_and2() : tt_xor2());
    }
    dfg.mark_output(acc, "y" + std::to_string(c));
  }
  nl.validate();
  return nl;
}

}  // namespace mcfpga::workload
