// Deterministic small edits over multi-context netlists — the workload
// behind the incremental-recompile bench and tests (cache/incremental.hpp).
//
// Both editors apply the same transformation to the same node index in
// EVERY context where it is applicable (the node exists and is a LUT op of
// the required shape), mirroring how a designer's edit to shared logic
// lands in each context that instantiates it.  Node indices and names are
// preserved, so cache::diff_netlists sees exactly the edited nodes.
//
//   * retable_edit — rewrites the node's truth table (function change on
//     fixed structure).  Placement-neutral AND routing-neutral: the
//     clustered connectivity is unchanged, so a delta recompile keeps the
//     entire previous physical design and only reprograms LUT planes.
//   * rewire_edit — retargets one fanin to a different earlier node
//     (structure change).  Invalidates the edited node's input nets, so a
//     delta recompile exercises the rip-up/re-route path.
#pragma once

#include <cstdint>

#include "netlist/dfg.hpp"

namespace mcfpga::workload {

/// Replaces node `node`'s truth table with a seed-derived one guaranteed
/// to differ from the original, identically in every context where `node`
/// is a LUT op.  Returns the edited netlist (contexts without the node
/// are copied unchanged).
netlist::MultiContextNetlist retable_edit(
    const netlist::MultiContextNetlist& base, std::size_t node,
    std::uint64_t seed);

/// Retargets one seed-chosen fanin of node `node` to a different
/// seed-chosen earlier node, identically in every context where `node` is
/// a LUT op with at least one fanin and at least two candidate sources
/// precede it.  Acyclicity is preserved by construction (fanins only move
/// to strictly earlier indices).
netlist::MultiContextNetlist rewire_edit(
    const netlist::MultiContextNetlist& base, std::size_t node,
    std::uint64_t seed);

}  // namespace mcfpga::workload
