#include "workload/bitstream_gen.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"
#include "config/context_id.hpp"

namespace mcfpga::workload {

namespace {
config::ContextPattern random_row(Rng& rng, const BitstreamGenParams& p) {
  if (p.regularity_fraction > 0.0 && rng.next_bool(p.regularity_fraction)) {
    const std::size_t k = config::num_id_bits(p.num_contexts);
    return config::ContextPattern::for_id_bit(
        p.num_contexts, static_cast<std::size_t>(rng.next_below(k)),
        rng.next_bool());
  }
  config::ContextPattern pattern(p.num_contexts);
  bool value = rng.next_bool(p.on_probability);
  pattern.set_value(0, value);
  for (std::size_t c = 1; c < p.num_contexts; ++c) {
    if (rng.next_bool(p.change_rate)) {
      value = !value;
    }
    pattern.set_value(c, value);
  }
  return pattern;
}
}  // namespace

config::Bitstream generate_bitstream(const BitstreamGenParams& params) {
  MCFPGA_REQUIRE(params.change_rate >= 0.0 && params.change_rate <= 1.0,
                 "change rate in [0, 1]");
  MCFPGA_REQUIRE(params.on_probability >= 0.0 &&
                     params.on_probability <= 1.0,
                 "on probability in [0, 1]");
  Rng rng(params.seed);
  config::Bitstream bs(params.num_contexts);
  for (std::size_t r = 0; r < params.rows; ++r) {
    bs.add_row("g" + std::to_string(r),
               config::ResourceKind::kRoutingSwitch, random_row(rng, params));
  }
  return bs;
}

std::vector<config::Bitstream> generate_blocks(
    const BitstreamGenParams& params, std::size_t block_rows) {
  MCFPGA_REQUIRE(block_rows >= 1, "block size must be >= 1");
  const config::Bitstream flat = generate_bitstream(params);
  std::vector<config::Bitstream> blocks;
  for (std::size_t start = 0; start < flat.num_rows(); start += block_rows) {
    config::Bitstream block(params.num_contexts);
    const std::size_t end = std::min(start + block_rows, flat.num_rows());
    for (std::size_t r = start; r < end; ++r) {
      block.add_row(flat.row(r).name, flat.row(r).kind, flat.row(r).pattern);
    }
    blocks.push_back(std::move(block));
  }
  return blocks;
}

}  // namespace mcfpga::workload
