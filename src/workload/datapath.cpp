#include "workload/datapath.hpp"

#include <bit>
#include <vector>

#include "common/error.hpp"

namespace mcfpga::workload {

namespace {

using netlist::Dfg;
using netlist::NodeRef;

BitVector tt_from(std::size_t arity, bool (*fn)(std::size_t)) {
  BitVector tt(std::size_t{1} << arity);
  for (std::size_t a = 0; a < tt.size(); ++a) {
    tt.set(a, fn(a));
  }
  return tt;
}

BitVector tt_xor2() {
  return tt_from(2, [](std::size_t a) {
    return ((a ^ (a >> 1)) & 1) != 0;
  });
}
BitVector tt_and2() {
  return tt_from(2, [](std::size_t a) { return (a & 3) == 3; });
}
BitVector tt_or2() {
  return tt_from(2, [](std::size_t a) { return (a & 3) != 0; });
}
BitVector tt_xor3() {
  return tt_from(3, [](std::size_t a) {
    return ((a ^ (a >> 1) ^ (a >> 2)) & 1) != 0;
  });
}
BitVector tt_maj3() {
  return tt_from(3, [](std::size_t a) {
    return static_cast<int>(a & 1) + static_cast<int>((a >> 1) & 1) +
               static_cast<int>((a >> 2) & 1) >=
           2;
  });
}
BitVector tt_mux3() {  // out = in2 ? in1 : in0
  return tt_from(3, [](std::size_t a) {
    return ((a >> 2) & 1) != 0 ? ((a >> 1) & 1) != 0 : (a & 1) != 0;
  });
}
BitVector tt_not1() {
  return tt_from(1, [](std::size_t a) { return (a & 1) == 0; });
}
BitVector tt_buf1() {
  return tt_from(1, [](std::size_t a) { return (a & 1) != 0; });
}

}  // namespace

Dfg alu(std::size_t bits, const std::string& prefix) {
  MCFPGA_REQUIRE(bits >= 1 && bits <= 16, "ALU bits in [1, 16]");
  Dfg dfg;
  std::vector<NodeRef> a(bits);
  std::vector<NodeRef> b(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    a[i] = dfg.add_input(prefix + "a" + std::to_string(i));
  }
  for (std::size_t i = 0; i < bits; ++i) {
    b[i] = dfg.add_input(prefix + "b" + std::to_string(i));
  }
  const NodeRef op0 = dfg.add_input(prefix + "op0");
  const NodeRef op1 = dfg.add_input(prefix + "op1");

  NodeRef carry = netlist::kNoNode;
  for (std::size_t i = 0; i < bits; ++i) {
    const std::string sfx = std::to_string(i);
    const NodeRef land = dfg.add_lut(prefix + "and" + sfx, {a[i], b[i]},
                                     tt_and2());
    const NodeRef lor = dfg.add_lut(prefix + "or" + sfx, {a[i], b[i]},
                                    tt_or2());
    const NodeRef lxor = dfg.add_lut(prefix + "xor" + sfx, {a[i], b[i]},
                                     tt_xor2());
    NodeRef sum;
    if (i == 0) {
      sum = lxor;  // no carry-in
      carry = land;
    } else {
      sum = dfg.add_lut(prefix + "sum" + sfx, {a[i], b[i], carry},
                        tt_xor3());
      carry = dfg.add_lut(prefix + "cry" + sfx, {a[i], b[i], carry},
                          tt_maj3());
    }
    // op: 00=AND, 01=OR, 10=XOR, 11=ADD — two mux levels.
    const NodeRef lo = dfg.add_lut(prefix + "m0_" + sfx, {land, lor, op0},
                                   tt_mux3());
    const NodeRef hi = dfg.add_lut(prefix + "m1_" + sfx, {lxor, sum, op0},
                                   tt_mux3());
    const NodeRef r = dfg.add_lut(prefix + "m2_" + sfx, {lo, hi, op1},
                                  tt_mux3());
    dfg.mark_output(r, prefix + "r" + std::to_string(i));
  }
  dfg.mark_output(carry, prefix + "alu_cout");
  dfg.validate();
  return dfg;
}

Dfg barrel_rotator(std::size_t width, const std::string& prefix) {
  MCFPGA_REQUIRE(width >= 2 && width <= 64 && std::has_single_bit(width),
                 "rotator width must be a power of two in [2, 64]");
  Dfg dfg;
  std::vector<NodeRef> data(width);
  for (std::size_t i = 0; i < width; ++i) {
    data[i] = dfg.add_input(prefix + "d" + std::to_string(i));
  }
  const std::size_t stages =
      static_cast<std::size_t>(std::countr_zero(width));
  std::vector<NodeRef> shift(stages);
  for (std::size_t s = 0; s < stages; ++s) {
    shift[s] = dfg.add_input(prefix + "sh" + std::to_string(s));
  }
  std::vector<NodeRef> layer = data;
  for (std::size_t s = 0; s < stages; ++s) {
    const std::size_t amount = std::size_t{1} << s;
    std::vector<NodeRef> next(width);
    for (std::size_t i = 0; i < width; ++i) {
      // Rotate LEFT by `amount` when shift bit s is set: output i takes
      // input (i - amount) mod width.
      const std::size_t rotated = (i + width - amount) % width;
      next[i] = dfg.add_lut(
          prefix + "rot" + std::to_string(s) + "_" + std::to_string(i),
          {layer[i], layer[rotated], shift[s]}, tt_mux3());
    }
    layer = std::move(next);
  }
  for (std::size_t i = 0; i < width; ++i) {
    dfg.mark_output(layer[i], prefix + "q" + std::to_string(i));
  }
  dfg.validate();
  return dfg;
}

Dfg priority_encoder(std::size_t width, const std::string& prefix) {
  MCFPGA_REQUIRE(width >= 2 && width <= 64, "encoder width in [2, 64]");
  Dfg dfg;
  std::vector<NodeRef> req(width);
  for (std::size_t i = 0; i < width; ++i) {
    req[i] = dfg.add_input(prefix + "req" + std::to_string(i));
  }
  // valid = OR-reduce; q bits = OR over requests whose index has that bit,
  // masked so only the HIGHEST asserted request wins:
  //   win[i] = req[i] AND NOT (req[i+1] OR ... OR req[width-1])
  // Build suffix-OR chain top-down.
  std::vector<NodeRef> suffix(width);  // OR of req[i+1..]
  NodeRef acc = netlist::kNoNode;
  for (std::size_t i = width; i-- > 0;) {
    suffix[i] = acc;  // kNoNode for the top request
    if (acc == netlist::kNoNode) {
      acc = req[i];
    } else {
      acc = dfg.add_lut(prefix + "sor" + std::to_string(i), {req[i], acc},
                        tt_or2());
    }
  }
  const NodeRef valid = acc;  // OR of all requests
  std::vector<NodeRef> win(width);
  for (std::size_t i = 0; i < width; ++i) {
    if (suffix[i] == netlist::kNoNode) {
      win[i] = dfg.add_lut(prefix + "win" + std::to_string(i), {req[i]},
                           tt_buf1());
    } else {
      // win = req AND NOT suffix.
      const NodeRef inv = dfg.add_lut(
          prefix + "ninv" + std::to_string(i), {suffix[i]}, tt_not1());
      win[i] = dfg.add_lut(prefix + "win" + std::to_string(i),
                           {req[i], inv}, tt_and2());
    }
  }
  const std::size_t qbits =
      static_cast<std::size_t>(std::bit_width(width - 1));
  for (std::size_t b = 0; b < qbits; ++b) {
    NodeRef bit = netlist::kNoNode;
    for (std::size_t i = 0; i < width; ++i) {
      if (((i >> b) & 1) == 0) {
        continue;
      }
      bit = bit == netlist::kNoNode
                ? win[i]
                : dfg.add_lut(prefix + "q" + std::to_string(b) + "_" +
                                  std::to_string(i),
                              {bit, win[i]}, tt_or2());
    }
    MCFPGA_CHECK(bit != netlist::kNoNode, "empty encoder bit");
    dfg.mark_output(bit, prefix + "q" + std::to_string(b));
  }
  dfg.mark_output(valid, prefix + "valid");
  dfg.validate();
  return dfg;
}

Dfg popcount(std::size_t width, const std::string& prefix) {
  MCFPGA_REQUIRE(width >= 2 && width <= 64, "popcount width in [2, 64]");
  Dfg dfg;
  // Column of 1-bit values per weight; reduce with full/half adders until
  // every weight has one bit (carry-save counter tree).
  std::vector<std::vector<NodeRef>> columns(1);
  for (std::size_t i = 0; i < width; ++i) {
    columns[0].push_back(dfg.add_input(prefix + "x" + std::to_string(i)));
  }
  std::size_t serial = 0;
  for (std::size_t w = 0; w < columns.size(); ++w) {
    while (columns[w].size() > 1) {
      if (columns.size() == w + 1) {
        columns.emplace_back();
      }
      if (columns[w].size() >= 3) {
        const NodeRef x = columns[w][columns[w].size() - 1];
        const NodeRef y = columns[w][columns[w].size() - 2];
        const NodeRef z = columns[w][columns[w].size() - 3];
        columns[w].resize(columns[w].size() - 3);
        columns[w].push_back(dfg.add_lut(
            prefix + "fs" + std::to_string(serial), {x, y, z}, tt_xor3()));
        columns[w + 1].push_back(dfg.add_lut(
            prefix + "fc" + std::to_string(serial++), {x, y, z}, tt_maj3()));
      } else {
        const NodeRef x = columns[w][columns[w].size() - 1];
        const NodeRef y = columns[w][columns[w].size() - 2];
        columns[w].resize(columns[w].size() - 2);
        columns[w].push_back(dfg.add_lut(
            prefix + "hs" + std::to_string(serial), {x, y}, tt_xor2()));
        columns[w + 1].push_back(dfg.add_lut(
            prefix + "hc" + std::to_string(serial++), {x, y}, tt_and2()));
      }
    }
  }
  for (std::size_t w = 0; w < columns.size(); ++w) {
    MCFPGA_CHECK(columns[w].size() == 1, "unreduced popcount column");
    dfg.mark_output(columns[w][0], prefix + "c" + std::to_string(w));
  }
  dfg.validate();
  return dfg;
}

Dfg gray_to_binary(std::size_t width, const std::string& prefix) {
  MCFPGA_REQUIRE(width >= 2 && width <= 64, "converter width in [2, 64]");
  Dfg dfg;
  std::vector<NodeRef> gray(width);
  for (std::size_t i = 0; i < width; ++i) {
    gray[i] = dfg.add_input(prefix + "g" + std::to_string(i));
  }
  // b[width-1] = g[width-1]; b[i] = b[i+1] XOR g[i].
  NodeRef bin = dfg.add_lut(prefix + "btop", {gray[width - 1]}, tt_buf1());
  dfg.mark_output(bin, prefix + "b" + std::to_string(width - 1));
  for (std::size_t i = width - 1; i-- > 0;) {
    bin = dfg.add_lut(prefix + "bx" + std::to_string(i), {bin, gray[i]},
                      tt_xor2());
    dfg.mark_output(bin, prefix + "b" + std::to_string(i));
  }
  dfg.validate();
  return dfg;
}

netlist::MultiContextNetlist virtual_datapath(std::size_t bits) {
  MCFPGA_REQUIRE(bits >= 2 && bits <= 8 && std::has_single_bit(bits),
                 "virtual datapath bits must be a power of two in [2, 8]");
  netlist::MultiContextNetlist nl(4);
  // Context 0: ALU over a/b.  The shared operand names let the placer
  // reuse the same pads across contexts.
  nl.context(0) = alu(bits);
  // Context 1: rotate the a-operand (inputs named a<i> -> d<i> mapping via
  // prefix-free construction: use the same names by custom build).
  {
    netlist::Dfg dfg;
    std::vector<netlist::NodeRef> data(bits);
    for (std::size_t i = 0; i < bits; ++i) {
      data[i] = dfg.add_input("a" + std::to_string(i));
    }
    const std::size_t stages =
        static_cast<std::size_t>(std::countr_zero(bits));
    std::vector<netlist::NodeRef> shift(stages);
    for (std::size_t s = 0; s < stages; ++s) {
      shift[s] = dfg.add_input("b" + std::to_string(s));  // reuse b pins
    }
    std::vector<netlist::NodeRef> layer = data;
    for (std::size_t s = 0; s < stages; ++s) {
      const std::size_t amount = std::size_t{1} << s;
      std::vector<netlist::NodeRef> next(bits);
      for (std::size_t i = 0; i < bits; ++i) {
        const std::size_t rotated = (i + bits - amount) % bits;
        next[i] = dfg.add_lut(
            "rot" + std::to_string(s) + "_" + std::to_string(i),
            {layer[i], layer[rotated], shift[s]}, tt_mux3());
      }
      layer = std::move(next);
    }
    for (std::size_t i = 0; i < bits; ++i) {
      dfg.mark_output(layer[i], "r" + std::to_string(i));
    }
    dfg.validate();
    nl.context(1) = std::move(dfg);
  }
  // Context 2: priority encode the a-operand bits.
  {
    netlist::Dfg enc = priority_encoder(bits);
    // Rename inputs req<i> -> a<i> by rebuilding.
    netlist::Dfg dfg;
    for (std::size_t i = 0; i < enc.num_inputs(); ++i) {
      dfg.add_input("a" + std::to_string(i));
    }
    for (std::size_t i = enc.num_inputs(); i < enc.num_nodes(); ++i) {
      const auto& n = enc.node(static_cast<netlist::NodeRef>(i));
      dfg.add_lut(n.name, n.fanins, n.truth_table);
    }
    for (const auto& out : enc.outputs()) {
      dfg.mark_output(out.node, out.name);
    }
    dfg.validate();
    nl.context(2) = std::move(dfg);
  }
  // Context 3: popcount of the a-operand bits.
  {
    netlist::Dfg pc = popcount(bits);
    netlist::Dfg dfg;
    for (std::size_t i = 0; i < pc.num_inputs(); ++i) {
      dfg.add_input("a" + std::to_string(i));
    }
    for (std::size_t i = pc.num_inputs(); i < pc.num_nodes(); ++i) {
      const auto& n = pc.node(static_cast<netlist::NodeRef>(i));
      dfg.add_lut(n.name, n.fanins, n.truth_table);
    }
    for (const auto& out : pc.outputs()) {
      dfg.mark_output(out.node, out.name);
    }
    dfg.validate();
    nl.context(3) = std::move(dfg);
  }
  nl.validate();
  return nl;
}

}  // namespace mcfpga::workload
