#include "workload/edits.hpp"

#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace mcfpga::workload {

namespace {

using netlist::Dfg;
using netlist::DfgNode;
using netlist::DfgOutput;
using netlist::MultiContextNetlist;
using netlist::NodeRef;
using netlist::NodeType;

/// Rebuilds `src` through the public Dfg API (indices are preserved by
/// construction), with node `target` replaced by `replacement`.
template <typename Transform>
Dfg rebuild_with(const Dfg& src, std::size_t target,
                 const Transform& transform) {
  Dfg out;
  for (std::size_t i = 0; i < src.num_nodes(); ++i) {
    DfgNode node = src.node(static_cast<NodeRef>(i));
    if (i == target) {
      transform(node);
    }
    if (node.type == NodeType::kPrimaryInput) {
      out.add_input(std::move(node.name));
    } else {
      out.add_lut(std::move(node.name), std::move(node.fanins),
                  std::move(node.truth_table));
    }
  }
  for (const DfgOutput& o : src.outputs()) {
    out.mark_output(o.node, o.name);
  }
  return out;
}

bool is_lut_at(const Dfg& dfg, std::size_t node) {
  return node < dfg.num_nodes() &&
         dfg.node(static_cast<NodeRef>(node)).type == NodeType::kLutOp;
}

}  // namespace

MultiContextNetlist retable_edit(const MultiContextNetlist& base,
                                 std::size_t node, std::uint64_t seed) {
  MultiContextNetlist edited = base;
  // One table drawn up front, shared by every touched context, so the
  // edit keeps cross-context sharing intact.
  for (std::size_t c = 0; c < base.num_contexts(); ++c) {
    if (!is_lut_at(base.context(c), node)) {
      continue;
    }
    const DfgNode& original =
        base.context(c).node(static_cast<NodeRef>(node));
    Rng rng(seed * 0x9e3779b97f4a7c15ull + node + 1);
    BitVector table = original.truth_table;
    do {
      for (std::size_t b = 0; b < table.size(); ++b) {
        table.set(b, rng.next_bool());
      }
    } while (table == original.truth_table);
    edited.context(c) = rebuild_with(
        base.context(c), node,
        [&table](DfgNode& n) { n.truth_table = table; });
  }
  return edited;
}

MultiContextNetlist rewire_edit(const MultiContextNetlist& base,
                                std::size_t node, std::uint64_t seed) {
  MultiContextNetlist edited = base;
  for (std::size_t c = 0; c < base.num_contexts(); ++c) {
    const Dfg& dfg = base.context(c);
    if (!is_lut_at(dfg, node) || node < 2) {
      continue;
    }
    const DfgNode& original = dfg.node(static_cast<NodeRef>(node));
    if (original.fanins.empty()) {
      continue;
    }
    Rng rng(seed * 0x9e3779b97f4a7c15ull + node + 1);
    const std::size_t slot = rng.next_below(original.fanins.size());
    // Pick a strictly earlier node different from the current fanin;
    // node >= 2 guarantees a candidate exists.
    NodeRef target = original.fanins[slot];
    while (target == original.fanins[slot]) {
      target = static_cast<NodeRef>(rng.next_below(node));
    }
    edited.context(c) = rebuild_with(
        dfg, node, [slot, target](DfgNode& n) { n.fanins[slot] = target; });
  }
  return edited;
}

}  // namespace mcfpga::workload
