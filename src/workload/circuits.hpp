// Structured benchmark-circuit generators.
//
// The paper evaluates with (unpublished) DFG mappings; these generators
// provide the reproducible stand-ins: classic datapath and control kernels
// expressed as truth-table DFGs, plus multi-context compositions in which
// contexts implement pipeline stages that share common sub-logic — the
// workload shape Sec. 4's adaptive logic block is designed for.
#pragma once

#include <cstddef>
#include <string>

#include "netlist/dfg.hpp"

namespace mcfpga::workload {

/// n-bit ripple-carry adder: inputs a[i], b[i], cin; outputs s[i], cout.
netlist::Dfg ripple_carry_adder(std::size_t bits,
                                const std::string& prefix = "");

/// XOR-reduction parity tree over n inputs: output "parity".
netlist::Dfg parity_tree(std::size_t inputs, const std::string& prefix = "");

/// n-bit equality comparator: output "eq".
netlist::Dfg comparator(std::size_t bits, const std::string& prefix = "");

/// n x n array multiplier (AND partial products + carry-save rows):
/// outputs p[0..2n-1].
netlist::Dfg array_multiplier(std::size_t bits,
                              const std::string& prefix = "");

/// One CRC step: width-bit register state + 1 data bit in, next state out.
/// `poly` gives the feedback taps (bit i set -> state bit i gets feedback).
netlist::Dfg crc_step(std::size_t width, std::uint64_t poly,
                      const std::string& prefix = "");

/// Multiplexer tree selecting one of 2^sel_bits data inputs.
netlist::Dfg mux_tree(std::size_t sel_bits, const std::string& prefix = "");

/// Multi-context "pipeline" workload: context c implements stage c of a
/// processing pipeline over the same primary inputs.  All stages share the
/// same front-end (a parity/compare prefix), exercising cross-context node
/// sharing.
netlist::MultiContextNetlist pipeline_workload(std::size_t num_contexts,
                                               std::size_t data_bits);

}  // namespace mcfpga::workload
