#include "workload/random_dfg.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mcfpga::workload {

namespace {

using netlist::Dfg;
using netlist::NodeRef;

BitVector random_tt(Rng& rng, std::size_t arity) {
  BitVector tt(std::size_t{1} << arity);
  // Reject constant tables so nodes are never trivially redundant.
  do {
    for (std::size_t a = 0; a < tt.size(); ++a) {
      tt.set(a, rng.next_bool());
    }
  } while (tt.all_equal(false) || tt.all_equal(true));
  return tt;
}

/// Appends `count` random LUT nodes to `dfg`, drawing fanins from all
/// existing nodes with a recency bias.
void grow(Dfg& dfg, Rng& rng, std::size_t count, std::size_t max_arity,
          const std::string& prefix) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t pool = dfg.num_nodes();
    const std::size_t arity = static_cast<std::size_t>(
        rng.next_in(2, static_cast<std::int64_t>(
                           std::min(max_arity, pool))));
    std::set<NodeRef> fanins;
    while (fanins.size() < arity) {
      // Recency bias: half the draws come from the most recent quarter.
      std::size_t idx;
      if (rng.next_bool() && pool >= 4) {
        idx = pool - 1 - static_cast<std::size_t>(rng.next_below(pool / 4 + 1));
      } else {
        idx = static_cast<std::size_t>(rng.next_below(pool));
      }
      fanins.insert(static_cast<NodeRef>(idx));
    }
    dfg.add_lut(prefix + std::to_string(i),
                std::vector<NodeRef>(fanins.begin(), fanins.end()),
                random_tt(rng, fanins.size()));
  }
}

void mark_sinks_as_outputs(Dfg& dfg) {
  std::vector<bool> used(dfg.num_nodes(), false);
  for (const auto& n : dfg.nodes()) {
    for (const NodeRef f : n.fanins) {
      used[static_cast<std::size_t>(f)] = true;
    }
  }
  std::size_t serial = 0;
  for (std::size_t i = 0; i < dfg.num_nodes(); ++i) {
    if (!used[i] && dfg.node(static_cast<NodeRef>(i)).type ==
                        netlist::NodeType::kLutOp) {
      dfg.mark_output(static_cast<NodeRef>(i), "y" + std::to_string(serial++));
    }
  }
}

}  // namespace

Dfg random_dfg(const RandomDfgParams& params) {
  MCFPGA_REQUIRE(params.num_inputs >= 2, "need >= 2 inputs");
  MCFPGA_REQUIRE(params.max_arity >= 2 && params.max_arity <= 8,
                 "max arity in [2, 8]");
  Rng rng(params.seed);
  Dfg dfg;
  for (std::size_t i = 0; i < params.num_inputs; ++i) {
    dfg.add_input("x" + std::to_string(i));
  }
  grow(dfg, rng, params.num_nodes, params.max_arity, "n");
  mark_sinks_as_outputs(dfg);
  dfg.validate();
  return dfg;
}

netlist::MultiContextNetlist random_multi_context(
    const RandomMultiContextParams& params) {
  MCFPGA_REQUIRE(params.share_fraction >= 0.0 && params.share_fraction <= 1.0,
                 "share fraction in [0, 1]");
  netlist::MultiContextNetlist nl(params.num_contexts);

  // Context 0: fully random.
  nl.context(0) = random_dfg(params.base);

  // A topological prefix of context 0 is closed under fanins, so cloning
  // the first `shared` LUT nodes (plus all inputs) is always legal.
  const Dfg& base = nl.context(0);
  const std::size_t shared = static_cast<std::size_t>(
      params.share_fraction * static_cast<double>(params.base.num_nodes));

  for (std::size_t c = 1; c < params.num_contexts; ++c) {
    Rng rng(params.base.seed * 977 + c);
    Dfg& dfg = nl.context(c);
    for (std::size_t i = 0; i < params.base.num_inputs; ++i) {
      dfg.add_input("x" + std::to_string(i));
    }
    // Clone the shared prefix verbatim (same names, same tables): the
    // sharing analysis will discover these as shared classes.
    for (std::size_t i = 0; i < shared; ++i) {
      const auto& n = base.node(
          static_cast<NodeRef>(params.base.num_inputs + i));
      dfg.add_lut(n.name, n.fanins, n.truth_table);
    }
    grow(dfg, rng, params.base.num_nodes - shared,
         params.base.max_arity, "c" + std::to_string(c) + "_n");
    mark_sinks_as_outputs(dfg);
    dfg.validate();
  }
  return nl;
}

}  // namespace mcfpga::workload
