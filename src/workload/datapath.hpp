// Additional datapath/control circuit generators: the wider workload suite
// used by the flow benches and by multi-context compositions where each
// context hosts a different functional unit (the DPGA "virtual hardware"
// use case from the paper's introduction).
#pragma once

#include <cstddef>
#include <string>

#include "netlist/dfg.hpp"

namespace mcfpga::workload {

/// 1-bit-sliceable ALU over n bits: op (2 bits) selects among
/// AND / OR / XOR / ADD (ripple).  Outputs r[i] and carry-out "alu_cout".
netlist::Dfg alu(std::size_t bits, const std::string& prefix = "");

/// Logarithmic barrel shifter: rotates `width` data bits left by the
/// binary amount on the shift inputs.  width must be a power of two.
netlist::Dfg barrel_rotator(std::size_t width, const std::string& prefix = "");

/// Priority encoder over `width` request lines: outputs the index of the
/// highest-numbered asserted line ("q0..") plus "valid".
netlist::Dfg priority_encoder(std::size_t width,
                              const std::string& prefix = "");

/// Population count over `width` inputs: outputs "c0..".
netlist::Dfg popcount(std::size_t width, const std::string& prefix = "");

/// Gray-code to binary converter over `width` bits.
netlist::Dfg gray_to_binary(std::size_t width,
                            const std::string& prefix = "");

/// A 4-context "virtual datapath": context 0 = ALU(add), 1 = rotator,
/// 2 = priority encoder, 3 = popcount — four functional units
/// time-multiplexed onto one fabric over shared operand inputs.
netlist::MultiContextNetlist virtual_datapath(std::size_t bits);

}  // namespace mcfpga::workload
