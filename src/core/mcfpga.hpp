// Top-level device object: compiles a multi-context netlist onto the
// fabric, owns the routing graph and fabric simulator for the result, and
// exposes the verification and evaluation entry points the benches and
// examples drive.
#pragma once

#include <cstdint>
#include <memory>

#include "area/area_model.hpp"
#include "config/stats.hpp"
#include "core/flow.hpp"
#include "sim/simulator.hpp"

namespace mcfpga::core {

class MCFPGA {
 public:
  /// Compiles `netlist` onto a fabric derived from `spec` (auto-grown when
  /// options.auto_size) and programs the simulator.
  MCFPGA(const netlist::MultiContextNetlist& netlist,
         const arch::FabricSpec& spec, const CompileOptions& options = {});

  const CompiledDesign& design() const { return design_; }
  const arch::RoutingGraph& graph() const { return *graph_; }
  const sim::FabricSimulator& simulator() const { return *simulator_; }

  /// Evaluates one context on the programmed fabric.
  netlist::ValueMap run(std::size_t context,
                        const netlist::ValueMap& inputs) const;

  /// Cross-checks the fabric simulator against the netlist reference
  /// evaluator on `vectors` random input vectors per context.  Returns the
  /// number of mismatching (context, vector, output) triples (0 = proven
  /// consistent for the sampled vectors).
  std::size_t verify(std::size_t vectors = 32, std::uint64_t seed = 7) const;

  /// Redundancy/regularity statistics of the full fabric bitstream.
  config::BitstreamStats bitstream_stats() const;

  /// Sec. 5 comparison on THIS design's fabric and bitstream: groups the
  /// routing switches by owning block, runs decoder synthesis per block,
  /// and prices both implementations.
  area::ComparisonReport area_report(
      const area::ComparisonOptions& options = {}) const;

 private:
  CompiledDesign design_;
  std::unique_ptr<arch::RoutingGraph> graph_;
  std::unique_ptr<sim::FabricSimulator> simulator_;
};

}  // namespace mcfpga::core
