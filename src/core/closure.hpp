// Timing-closure feedback loop: place -> route -> STA -> re-place.
//
// One-shot compilation estimates criticality before routing (logic depth)
// and never revisits placement once real switch counts exist.  The
// ClosureLoopStage closes that loop, VPR-style: iteration 1 runs the
// standard Place/Route/Timing stages verbatim, then every further
// iteration
//
//   1. exports post-route per-connection criticalities from the Timing
//      stage's reports (timing::connection_criticalities) and folds the
//      per-class worst into the placement nets — an exact-integer weight
//      rescale through place::effective_net_weight, so the incremental
//      annealer keeps bit-exact deltas;
//   2. re-anneals from the previous placement at reduced temperature
//      (place() warm start) with timing_mode forced on;
//   3. rebuilds the physical nets under the new placement
//      (build_route_nets) and re-routes with the router's congestion
//      history carried across iterations (route::RouteHistory) and
//      timing_mode forced on — under cross_context_mode == kNegotiated
//      the scheduler additionally receives per-context criticalities
//      from the PREVIOUS iteration's STA (the re-route runs before this
//      iteration's timing pass), each the context's critical path as a
//      fraction of the worst context's — i.e. 1 - slack/budget under the
//      shared budget — so the context with the least slack claims wires
//      first;
//   4. re-runs the Timing stage and scores the iteration by worst slack
//      against the iteration-1 critical-path budget.
//
// Every iteration lands in FlowContext::closure_stats; the loop exits
// early when an iteration fails to improve the best worst slack by more
// than CompileOptions::closure_slack_tolerance (or when a refine re-route
// fails to converge), and the best-slack iteration's artifacts are
// restored at the end — closure never finishes worse than one-shot, and
// with closure_iterations == 1 the loop IS the plain three-stage block,
// bit for bit.
#pragma once

#include "core/stages.hpp"

namespace mcfpga::core {

/// Drives the place -> route -> STA -> re-place loop over the context.
/// Requires ClusterStage's artifacts; fills everything PlaceStage,
/// RouteStage and TimingStage would, plus ctx.closure_stats.
class ClosureLoopStage : public Stage {
 public:
  const char* name() const override { return "closure"; }
  void run(FlowContext& ctx) const override;
};

/// The closure pipeline: TechMap/Sharing/PlaneAlloc/Cluster, then the
/// closure loop in place of Place/Route/Timing, then Program.  compile()
/// selects it when options.closure_iterations >= 2.
const std::vector<const Stage*>& closure_pipeline();

}  // namespace mcfpga::core
