// End-to-end compilation flow: multi-context netlist -> programmed fabric.
//
// The flow is a pipeline of named stages (core/stages.hpp) driven by a
// FlowContext that carries every intermediate artifact plus per-stage
// wall-clock timings (the "mapping tools" the paper defers to future work,
// built here so the architecture can be exercised):
//
//   TechMapStage    — Shannon-decompose ops to the single-plane LUT size;
//   SharingStage    — structural hashing across contexts (Fig. 14a);
//   PlaneAllocStage — classes -> MCMG-LUT slots + granularity (Sec. 4);
//   ClusterStage    — slots -> logic blocks, I/O terminal discovery;
//   PlaceStage      — fabric sizing + simulated annealing over the grid
//                     (optionally criticality-weighted, placer timing_mode);
//   RouteStage      — PathFinder over the RRG (Sec. 3), contexts routed
//                     in parallel with bit-identical-to-serial results
//                     (optionally timing-driven, router timing_mode;
//                     optionally cross-context negotiated, router
//                     cross_context_mode — route/schedule.hpp);
//   TimingStage     — per-context incremental STA over the routed design:
//                     TimingReports + ContextStats critical paths;
//   ProgramStage    — LUT plane tables, switch patterns, pad bindings,
//                     full fabric bitstream.
//
// compile() runs the default pipeline end to end; with
// CompileOptions::closure_iterations >= 2 the Place/Route/Timing block is
// replaced by the timing-closure loop (core/closure.hpp), which feeds
// post-route criticalities back into re-placement and re-routing until
// worst slack stops improving.  Callers that want stage reuse, ablation
// benches, or batch compilation drive the stages directly via
// core/stages.hpp.  The result carries everything needed to simulate,
// time, and price the design on both fabrics.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arch/routing_graph.hpp"
#include "config/bitstream.hpp"
#include "mapping/plane_alloc.hpp"
#include "netlist/dfg.hpp"
#include "netlist/sharing.hpp"
#include "place/placer.hpp"
#include "route/router.hpp"
#include "sim/delay_model.hpp"
#include "sim/simulator.hpp"
#include "timing/timing_graph.hpp"

namespace mcfpga::core {

struct CompileOptions {
  std::uint64_t seed = 1;
  /// Placement knobs; placer.seed left at kSeedFromFlow inherits `seed`.
  place::PlacerOptions placer{};
  route::RouterOptions router{};
  /// SE/LUT delays used by every timing consumer (criticality weighting,
  /// timing-driven routing, the Timing stage's reports).
  sim::DelayParams delay{};
  /// Grow the fabric (square-ish) until clusters and I/O fit.
  bool auto_size = true;
  /// Timing-closure feedback loop: total place -> route -> STA iterations.
  /// 1 (default) = the plain one-shot pipeline, bit-identical to the
  /// eight-stage flow.  >= 2 folds post-route connection criticalities
  /// back into the placer's net weights, re-anneals at reduced
  /// temperature from the previous placement, and re-routes with the
  /// router's congestion history carried across iterations; the
  /// best-worst-slack iteration wins, so closure never ends worse than
  /// one-shot.
  std::size_t closure_iterations = 1;
  /// Minimum worst-slack improvement (SE delay units) a closure iteration
  /// must deliver over the best so far for the loop to continue; 0 =
  /// keep iterating while there is any strict improvement.
  double closure_slack_tolerance = 0.0;
  /// Adaptive refine policy for the closure loop's re-anneal.  false (the
  /// default) keeps the historical constants: temperature scale 0.02x and
  /// a halved sweep budget.  true derives both from the post-route slack
  /// distribution — a design whose slack is tight everywhere gets a
  /// larger perturbation and the full sweep budget, one with a single
  /// hot path keeps the gentle refine (deterministic either way).
  bool closure_adaptive_refine = false;
};

/// One logic block's worth of slots.
struct Cluster {
  std::vector<std::size_t> slots;       ///< Slot ids (<= LB outputs).
  lut::LutMode mode;
  /// Class ids feeding the LB input pins, pin i = pin_signals[i].
  std::vector<std::size_t> pin_signals;
};

struct ContextStats {
  std::size_t nets = 0;
  std::size_t wire_nodes_used = 0;
  std::size_t switches_crossed = 0;  ///< Sum over all connections.
  double critical_path = 0.0;        ///< From the SE delay model.
  /// Wire nodes this context shares with at least one other context
  /// (route::ContextRouteSummary::cross_context_conflicts — what the
  /// negotiated cross-context scheduler drives down).
  std::size_t cross_context_conflicts = 0;
  /// Maze-expansion engine traffic of the kept routing pass (see
  /// route::ContextRouteSummary): queue pushes/pops, lazy-deletion stale
  /// pops, and nodes actually expanded.  The heap-vs-bucket benches read
  /// these off BENCH_JSON to confirm reduced queue traffic.
  std::size_t heap_pushes = 0;
  std::size_t heap_pops = 0;
  std::size_t stale_pops = 0;
  std::size_t nodes_expanded = 0;
  /// Delta-recompile accounting (cache::CompileService::compile_incremental;
  /// both stay 0 on cold/full compiles): nets of this context whose routed
  /// tree was invalidated by the edit, and nets actually re-routed.  They
  /// differ only when the router reroutes a net it could have kept.
  std::size_t nets_invalidated = 0;
  std::size_t nets_rerouted = 0;
  /// Interleaved cross-context scheduling only (CrossContextMode::
  /// kInterleaved; 0 otherwise): nets of this context the merged worklist
  /// ripped + re-routed, and nets re-enqueued because a peer's commit
  /// changed their pressure (dirty-set churn).
  std::size_t interleave_reroutes = 0;
  std::size_t interleave_requeues = 0;
  /// Speculative parallel drain of the interleaved worklist (both 0 when
  /// `interleave_workers` resolves to one, or outside kInterleaved):
  /// speculations committed as-is because their read-set still matched the
  /// live state, and speculations discarded because a batch predecessor
  /// invalidated them (the net was then re-routed live).
  std::size_t spec_hits = 0;
  std::size_t spec_aborts = 0;
};

/// Stage-cache and delta-recompile accounting of the compile that produced
/// a design.  All-zero (the default) for plain uncached compile() calls;
/// cache::CompileService fills it from its ArtifactCache counters and, on
/// the delta path, from the edit diff.
struct CacheStats {
  std::size_t hits = 0;       ///< Stage artifacts served from cache.
  std::size_t misses = 0;     ///< Stage lookups that ran the stage.
  std::size_t evictions = 0;  ///< LRU evictions so far (cache lifetime).
  std::size_t interned_patterns = 0;   ///< Distinct live ContextPatterns.
  std::size_t pattern_dedup_hits = 0;  ///< Pattern stores folded into one.
  /// Delta path only (compile_incremental that did not fall back):
  bool delta = false;                  ///< Design came from the delta path.
  std::size_t nets_invalidated = 0;    ///< Summed over contexts.
  std::size_t nets_rerouted = 0;       ///< Summed over contexts.
  std::size_t anneal_moves_saved = 0;  ///< Cold-anneal moves skipped.
  /// Incremental ProgramStage accounting (delta path only): bitstream
  /// rows copied verbatim from the cached design vs rows actually
  /// regenerated because their pattern (or the routing) changed.
  std::size_t program_rows_reused = 0;
  std::size_t program_rows_reprogrammed = 0;
  /// Why a compile_incremental call fell back to the full pipeline
  /// (empty = no fallback).
  std::string delta_fallback;
  /// Service-lifetime fallback breakdown: reason -> times a delta
  /// recompile degraded to a full compile for it (accumulated by
  /// cache::CompileService across every compile_incremental call, so
  /// operators can see WHY the delta path keeps bailing, e.g.
  /// "negotiated multi-context edit" dominating).  Printed by
  /// core/report; empty when the service never fell back.
  std::map<std::string, std::size_t> delta_fallback_counts;
};

/// Wall-clock of one pipeline stage (filled by run_pipeline).  Names
/// containing a '.' (e.g. "place.restart0") are informational
/// sub-timings that overlap their parent stage — skip them when summing
/// entries into a total wall clock.
struct StageTiming {
  std::string name;
  double seconds = 0.0;
};

/// Outcome of one place -> route -> STA closure iteration (filled by the
/// ClosureLoopStage; one entry per executed iteration, including
/// non-improving ones, so the iterations-vs-slack curve is recorded).
/// The slack budget is anchored at iteration 1's worst context critical
/// path: worst_slack = budget - critical_path, so iteration 1 scores
/// exactly 0 and every improvement is positive.
struct ClosureIterationStats {
  std::size_t iteration = 0;   ///< 1-based loop iteration.
  double critical_path = 0.0;  ///< Worst critical path over contexts.
  double worst_slack = 0.0;    ///< Iteration-1 budget minus critical_path.
  std::size_t wirelength = 0;  ///< Wire nodes used, summed over contexts.
  double seconds = 0.0;        ///< Wall clock of the whole iteration.
};

struct CompiledDesign {
  arch::FabricSpec fabric;               ///< Possibly auto-grown.
  netlist::MultiContextNetlist netlist;  ///< Post tech-map.
  netlist::SharingAnalysis sharing;
  mapping::PlaneAllocation planes;

  std::vector<Cluster> clusters;
  std::vector<std::size_t> slot_cluster;  ///< slot -> cluster.
  std::vector<std::size_t> slot_output;   ///< slot -> LB output index.

  place::Placement placement;
  route::RouteResult routing;
  sim::FabricProgram program;

  /// Complete fabric bitstream: every routing switch, every LUT bit,
  /// every control bit (the input to the Sec. 5 area comparison and the
  /// Table 1 statistics).
  config::Bitstream full_bitstream;

  std::vector<ContextStats> context_stats;
  /// Per-context STA snapshot from the Timing stage (arrival/required per
  /// timing node, slacks, critical path).
  std::vector<timing::TimingReport> timing_reports;
  /// One entry per closure-loop iteration (empty for one-shot compiles).
  std::vector<ClosureIterationStats> closure_stats;

  /// Per-stage wall-clock of the pipeline that produced this design.
  std::vector<StageTiming> stage_timings;

  /// Stage-cache / delta-recompile accounting (all-zero when the design
  /// was compiled without a cache).
  CacheStats cache;

  /// Primary I/O name -> placement terminal index.
  std::map<std::string, std::size_t> input_terminals;
  std::map<std::string, std::size_t> output_terminals;
};

/// Compiles `netlist` onto a fabric derived from `spec`.
/// Throws FlowError when the design cannot be mapped/placed/routed.
CompiledDesign compile(const netlist::MultiContextNetlist& netlist,
                       const arch::FabricSpec& spec,
                       const CompileOptions& options = {});

}  // namespace mcfpga::core
