#include "core/flow.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"
#include "config/context_id.hpp"
#include "mapping/context_merge.hpp"
#include "mapping/tech_map.hpp"

namespace mcfpga::core {

namespace {

using mapping::ClassUse;

/// Union-append `extra` into `pins`, preserving first-seen order.
void merge_pins(std::vector<std::size_t>& pins,
                const std::vector<std::size_t>& extra) {
  for (const std::size_t p : extra) {
    if (std::find(pins.begin(), pins.end(), p) == pins.end()) {
      pins.push_back(p);
    }
  }
}

std::size_t pin_of(const Cluster& cluster, std::size_t cls) {
  const auto it =
      std::find(cluster.pin_signals.begin(), cluster.pin_signals.end(), cls);
  MCFPGA_CHECK(it != cluster.pin_signals.end(),
               "signal not present on cluster pins");
  return static_cast<std::size_t>(it - cluster.pin_signals.begin());
}

}  // namespace

CompiledDesign compile(const netlist::MultiContextNetlist& input_netlist,
                       const arch::FabricSpec& input_spec,
                       const CompileOptions& options) {
  input_netlist.validate();
  arch::FabricSpec spec = input_spec;
  spec.validate();
  const std::size_t n = spec.num_contexts;
  MCFPGA_REQUIRE(input_netlist.num_contexts() == n,
                 "netlist context count must match the fabric");

  CompiledDesign d;

  // --- 1. Tech map ---------------------------------------------------------
  const std::size_t max_inputs =
      spec.logic_block.base_inputs + config::num_id_bits(n);
  d.netlist = mapping::decompose_to_arity(input_netlist, max_inputs);

  // --- 2. Sharing ----------------------------------------------------------
  d.sharing = netlist::analyze_sharing(d.netlist);
  const std::vector<ClassUse> uses =
      mapping::lut_class_uses(d.netlist, d.sharing);

  // --- 3. Plane allocation -------------------------------------------------
  d.planes = mapping::allocate_planes(uses, spec.logic_block.base_inputs, n,
                                      spec.logic_block.control);

  // --- 4. Clustering -------------------------------------------------------
  // Slots sharing a logic block share its input pins, so (a) the union of
  // their fanin signals must fit the mode's inputs and (b) no slot may feed
  // another slot in the same block — the block evaluates only when ALL its
  // pins are resolved, so an intra-block dependency would deadlock it.
  d.slot_cluster.assign(d.planes.slots.size(), SIZE_MAX);
  d.slot_output.assign(d.planes.slots.size(), SIZE_MAX);
  std::vector<std::vector<std::size_t>> cluster_produces;
  const auto slot_produces = [&](std::size_t s) {
    std::vector<std::size_t> out;
    for (const auto& e : d.planes.slots[s].entries) {
      out.push_back(e.use.cls);
    }
    return out;
  };
  for (std::size_t s = 0; s < d.planes.slots.size(); ++s) {
    const auto& slot = d.planes.slots[s];
    std::vector<std::size_t> pins;
    for (const auto& e : slot.entries) {
      merge_pins(pins, e.use.fanin_classes);
    }
    MCFPGA_CHECK(pins.size() <= slot.mode.inputs,
                 "slot fanin exceeds its mode inputs");
    const std::vector<std::size_t> produces = slot_produces(s);
    bool placed = false;
    for (std::size_t k = 0; k < d.clusters.size() && !placed; ++k) {
      Cluster& cl = d.clusters[k];
      if (cl.mode != slot.mode ||
          cl.slots.size() >= spec.logic_block.num_outputs) {
        continue;
      }
      std::vector<std::size_t> merged = cl.pin_signals;
      merge_pins(merged, pins);
      if (merged.size() > cl.mode.inputs) {
        continue;
      }
      // Reject intra-block dependencies in either direction.
      bool dependent = false;
      for (const std::size_t p : merged) {
        if (std::find(produces.begin(), produces.end(), p) !=
                produces.end() ||
            std::find(cluster_produces[k].begin(), cluster_produces[k].end(),
                      p) != cluster_produces[k].end()) {
          dependent = true;
          break;
        }
      }
      if (dependent) {
        continue;
      }
      d.slot_cluster[s] = k;
      d.slot_output[s] = cl.slots.size();
      cl.slots.push_back(s);
      cl.pin_signals = std::move(merged);
      cluster_produces[k].insert(cluster_produces[k].end(), produces.begin(),
                                 produces.end());
      placed = true;
    }
    if (!placed) {
      Cluster cl;
      cl.mode = slot.mode;
      cl.slots.push_back(s);
      cl.pin_signals = pins;
      d.slot_cluster[s] = d.clusters.size();
      d.slot_output[s] = 0;
      d.clusters.push_back(std::move(cl));
      cluster_produces.push_back(produces);
    }
  }

  // --- I/O terminal discovery ---------------------------------------------
  // Class id -> primary-input name for input classes.
  std::unordered_map<std::size_t, std::string> input_class_name;
  for (const auto& cls : d.sharing.classes) {
    if (cls.arity == 0 && !cls.members.empty()) {
      const auto& [ctx, node] = cls.members.front();
      input_class_name.emplace(cls.id, d.netlist.context(ctx).node(node).name);
    }
  }
  // Output name -> per-context driver class.
  std::map<std::string, std::vector<std::size_t>> output_driver;  // SIZE_MAX = absent
  for (const std::string& name : d.netlist.all_output_names()) {
    output_driver.emplace(name, std::vector<std::size_t>(n, SIZE_MAX));
  }
  for (std::size_t c = 0; c < n; ++c) {
    for (const auto& out : d.netlist.context(c).outputs()) {
      output_driver[out.name][c] =
          d.sharing.class_of[c][static_cast<std::size_t>(out.node)];
    }
  }
  // Input classes that must reach the fabric: logic fanins + direct PO taps.
  std::unordered_set<std::size_t> needed_inputs;
  for (const auto& cl : d.clusters) {
    for (const std::size_t sig : cl.pin_signals) {
      if (input_class_name.count(sig) != 0) {
        needed_inputs.insert(sig);
      }
    }
  }
  for (const auto& [name, drivers] : output_driver) {
    for (const std::size_t cls : drivers) {
      if (cls != SIZE_MAX && input_class_name.count(cls) != 0) {
        needed_inputs.insert(cls);
      }
    }
  }

  // Terminal numbering: inputs (sorted by name for determinism), then
  // outputs (sorted by name).
  std::vector<std::pair<std::string, std::size_t>> input_list;
  for (const std::size_t cls : needed_inputs) {
    input_list.emplace_back(input_class_name.at(cls), cls);
  }
  std::sort(input_list.begin(), input_list.end());
  std::unordered_map<std::size_t, std::size_t> input_class_terminal;
  for (std::size_t i = 0; i < input_list.size(); ++i) {
    d.input_terminals[input_list[i].first] = i;
    input_class_terminal[input_list[i].second] = i;
  }
  std::size_t next_terminal = input_list.size();
  for (const auto& [name, drivers] : output_driver) {
    d.output_terminals[name] = next_terminal++;
  }
  const std::size_t num_terminals = next_terminal;

  // --- Fabric sizing -------------------------------------------------------
  const auto pads_available = [](const arch::FabricSpec& s) {
    // 2 pads per perimeter cell (matching RoutingGraph::build_pads).
    const std::size_t perimeter =
        s.width <= 1 || s.height <= 1
            ? s.num_cells()
            : 2 * s.width + 2 * s.height - 4;
    return 2 * perimeter;
  };
  if (options.auto_size) {
    while (spec.num_cells() < d.clusters.size() ||
           pads_available(spec) < num_terminals) {
      if (spec.width <= spec.height) {
        ++spec.width;
      } else {
        ++spec.height;
      }
    }
  }
  if (spec.num_cells() < d.clusters.size()) {
    throw FlowError("fabric too small: " + std::to_string(d.clusters.size()) +
                    " logic blocks needed, " +
                    std::to_string(spec.num_cells()) + " cells available");
  }
  d.fabric = spec;
  const arch::RoutingGraph graph(spec);
  if (graph.num_pads() < num_terminals) {
    throw FlowError("fabric has too few I/O pads");
  }

  // --- 5. Placement --------------------------------------------------------
  place::PlacementProblem prob;
  prob.num_clusters = d.clusters.size();
  prob.num_io_terminals = num_terminals;
  {
    // One placement net per driver class that anything reads.
    struct NetAccum {
      place::Terminal driver;
      std::vector<place::Terminal> sinks;
      std::size_t weight = 0;
    };
    std::map<std::size_t, NetAccum> by_class;
    const auto driver_terminal = [&](std::size_t cls) {
      const auto it = input_class_terminal.find(cls);
      if (it != input_class_terminal.end()) {
        return place::Terminal::io(it->second);
      }
      return place::Terminal::cluster(
          d.slot_cluster[d.planes.slot_of_class.at(cls)]);
    };
    for (std::size_t k = 0; k < d.clusters.size(); ++k) {
      for (const std::size_t sig : d.clusters[k].pin_signals) {
        auto& acc = by_class[sig];
        if (acc.sinks.empty() && acc.weight == 0) {
          acc.driver = driver_terminal(sig);
        }
        acc.sinks.push_back(place::Terminal::cluster(k));
        ++acc.weight;
      }
    }
    for (const auto& [name, drivers] : output_driver) {
      const std::size_t term = d.output_terminals.at(name);
      for (const std::size_t cls : drivers) {
        if (cls == SIZE_MAX) {
          continue;
        }
        auto& acc = by_class[cls];
        if (acc.sinks.empty() && acc.weight == 0) {
          acc.driver = driver_terminal(cls);
        }
        acc.sinks.push_back(place::Terminal::io(term));
        ++acc.weight;
      }
    }
    for (auto& [cls, acc] : by_class) {
      place::PlacementNet net;
      net.driver = acc.driver;
      net.sinks = std::move(acc.sinks);
      net.weight = std::max<std::size_t>(acc.weight, 1);
      prob.nets.push_back(std::move(net));
    }
  }
  place::PlacerOptions placer_options = options.placer;
  placer_options.seed = options.seed;
  d.placement = place::place(prob, graph, placer_options);

  // --- 6. Routing ----------------------------------------------------------
  const auto cluster_pos = [&](std::size_t k) {
    return d.placement.cluster_pos[k];
  };
  const auto class_driver_node = [&](std::size_t cls) -> arch::NodeId {
    const auto it = input_class_terminal.find(cls);
    if (it != input_class_terminal.end()) {
      return graph.pad(d.placement.io_pads[it->second]);
    }
    const std::size_t slot = d.planes.slot_of_class.at(cls);
    const std::size_t k = d.slot_cluster[slot];
    const auto [x, y] = cluster_pos(k);
    return graph.out_pin(x, y, d.slot_output[slot]);
  };

  std::vector<std::vector<route::RouteNet>> nets_per_context(n);
  for (std::size_t c = 0; c < n; ++c) {
    std::map<std::size_t, route::RouteNet> by_driver;  // class -> net
    const auto add_sink = [&](std::size_t cls, arch::NodeId sink) {
      auto& net = by_driver[cls];
      if (net.sinks.empty()) {
        net.name = "net_cls" + std::to_string(cls);
        net.source = class_driver_node(cls);
      }
      if (std::find(net.sinks.begin(), net.sinks.end(), sink) ==
          net.sinks.end()) {
        net.sinks.push_back(sink);
      }
    };
    for (std::size_t k = 0; k < d.clusters.size(); ++k) {
      const Cluster& cl = d.clusters[k];
      const auto [x, y] = cluster_pos(k);
      for (const std::size_t s : cl.slots) {
        for (const auto& e : d.planes.slots[s].entries) {
          if (std::find(e.use.contexts.begin(), e.use.contexts.end(), c) ==
              e.use.contexts.end()) {
            continue;
          }
          for (const std::size_t f : e.use.fanin_classes) {
            add_sink(f, graph.in_pin(x, y, pin_of(cl, f)));
          }
        }
      }
    }
    for (const auto& [name, drivers] : output_driver) {
      if (drivers[c] == SIZE_MAX) {
        continue;
      }
      add_sink(drivers[c],
               graph.pad(d.placement.io_pads[d.output_terminals.at(name)]));
    }
    nets_per_context[c].reserve(by_driver.size());
    for (auto& [cls, net] : by_driver) {
      nets_per_context[c].push_back(std::move(net));
    }
  }

  const route::Router router(graph, options.router);
  d.routing = router.route(nets_per_context);
  if (!d.routing.success) {
    throw FlowError("routing failed to converge (congestion)");
  }

  // --- 7. Programming ------------------------------------------------------
  d.program.switch_patterns = d.routing.switch_patterns;
  for (std::size_t k = 0; k < d.clusters.size(); ++k) {
    const Cluster& cl = d.clusters[k];
    const auto [x, y] = cluster_pos(k);
    sim::LbConfig cfg;
    cfg.x = x;
    cfg.y = y;
    cfg.mode = cl.mode;
    cfg.outputs.resize(spec.logic_block.num_outputs);
    for (const std::size_t s : cl.slots) {
      auto& out = cfg.outputs[d.slot_output[s]];
      out.used = true;
      out.plane_tables.assign(cl.mode.planes,
                              BitVector(std::size_t{1} << cl.mode.inputs));
      for (const auto& e : d.planes.slots[s].entries) {
        // Pin positions of the entry's fanins.
        std::vector<std::size_t> pin(e.use.fanin_classes.size());
        for (std::size_t i = 0; i < pin.size(); ++i) {
          pin[i] = pin_of(cl, e.use.fanin_classes[i]);
        }
        BitVector table(std::size_t{1} << cl.mode.inputs);
        for (std::size_t a = 0; a < table.size(); ++a) {
          std::size_t address = 0;
          for (std::size_t i = 0; i < pin.size(); ++i) {
            if ((a >> pin[i]) & 1) {
              address |= std::size_t{1} << i;
            }
          }
          table.set(a, e.use.truth_table.get(address));
        }
        for (const std::size_t plane : e.planes) {
          out.plane_tables[plane] = table;
        }
      }
    }
    d.program.lbs.push_back(std::move(cfg));
  }
  for (const auto& [name, term] : d.input_terminals) {
    d.program.input_pads[name] = d.placement.io_pads[term];
  }
  for (const auto& [name, term] : d.output_terminals) {
    d.program.output_pads[name] = d.placement.io_pads[term];
  }

  // --- Full-fabric bitstream -----------------------------------------------
  d.full_bitstream = d.routing.to_bitstream(graph);
  for (const auto& lb : d.program.lbs) {
    const std::string prefix =
        "lb(" + std::to_string(lb.x) + "," + std::to_string(lb.y) + ")";
    for (std::size_t o = 0; o < lb.outputs.size(); ++o) {
      if (!lb.outputs[o].used) {
        continue;
      }
      const auto& tables = lb.outputs[o].plane_tables;
      const std::size_t addresses = std::size_t{1} << lb.mode.inputs;
      for (std::size_t a = 0; a < addresses; ++a) {
        config::ContextPattern pattern(n);
        for (std::size_t c = 0; c < n; ++c) {
          pattern.set_value(c, tables[c & (lb.mode.planes - 1)].get(a));
        }
        d.full_bitstream.add_row(
            prefix + ".out" + std::to_string(o) + "[" + std::to_string(a) +
                "]",
            config::ResourceKind::kLutBit, std::move(pattern));
      }
    }
    // Mode (size-controller) bits: context-independent by definition.
    const std::size_t mode_bits = config::num_id_bits(n);
    const std::size_t planes_log =
        static_cast<std::size_t>(std::log2(lb.mode.planes) + 0.5);
    for (std::size_t b = 0; b < mode_bits; ++b) {
      d.full_bitstream.add_row(
          prefix + ".mode" + std::to_string(b),
          config::ResourceKind::kControlBit,
          config::ContextPattern(n, ((planes_log >> b) & 1) != 0));
    }
  }

  // --- Timing & stats ------------------------------------------------------
  // Timing node ids: one per SLOT (a slot has at most one active entry per
  // context, so per-context it is a single timing node; clusters would
  // alias independent slots into false cycles), then I/O terminals.
  const std::size_t num_nodes = d.planes.slots.size() + num_terminals;
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> pos_cluster;
  for (std::size_t k = 0; k < d.clusters.size(); ++k) {
    pos_cluster[{cluster_pos(k).first, cluster_pos(k).second}] = k;
  }
  std::unordered_map<std::size_t, std::size_t> pad_terminal;  // pad -> term
  for (std::size_t t = 0; t < d.placement.io_pads.size(); ++t) {
    pad_terminal[d.placement.io_pads[t]] = t;
  }
  const auto slot_at = [&](std::size_t cluster, std::size_t output) {
    for (const std::size_t s : d.clusters[cluster].slots) {
      if (d.slot_output[s] == output) {
        return s;
      }
    }
    throw ProgrammingError("no slot at cluster output");
  };
  d.context_stats.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    std::vector<sim::TimingArc> arcs;
    auto& stats = d.context_stats[c];
    stats.nets = d.routing.nets[c].size();
    for (const auto& net : d.routing.nets[c]) {
      const auto& src = graph.node(net.source);
      std::size_t from;
      if (src.kind == arch::NodeKind::kPad) {
        from = d.planes.slots.size() +
               pad_terminal.at(static_cast<std::size_t>(src.index));
      } else {
        const std::size_t k =
            pos_cluster.at({static_cast<std::size_t>(src.x),
                            static_cast<std::size_t>(src.y)});
        from = slot_at(k, static_cast<std::size_t>(src.index));
      }
      for (const auto& path : net.paths) {
        stats.switches_crossed += path.switch_count();
        stats.wire_nodes_used += path.edges.size();
        const auto& snk = graph.node(path.sink);
        if (snk.kind == arch::NodeKind::kPad) {
          sim::TimingArc arc;
          arc.from = from;
          arc.switches = path.switch_count();
          arc.to = d.planes.slots.size() +
                   pad_terminal.at(static_cast<std::size_t>(snk.index));
          arc.to_is_lut = false;
          if (arc.from != arc.to) {
            arcs.push_back(arc);
          }
          continue;
        }
        // In-pin: fan the arc out to every slot that reads this pin's
        // signal in context c.
        const std::size_t k =
            pos_cluster.at({static_cast<std::size_t>(snk.x),
                            static_cast<std::size_t>(snk.y)});
        const Cluster& cl = d.clusters[k];
        const std::size_t signal =
            cl.pin_signals[static_cast<std::size_t>(snk.index)];
        for (const std::size_t s : cl.slots) {
          for (const auto& e : d.planes.slots[s].entries) {
            if (std::find(e.use.contexts.begin(), e.use.contexts.end(), c) ==
                    e.use.contexts.end() ||
                std::find(e.use.fanin_classes.begin(),
                          e.use.fanin_classes.end(),
                          signal) == e.use.fanin_classes.end()) {
              continue;
            }
            sim::TimingArc arc;
            arc.from = from;
            arc.to = s;
            arc.switches = path.switch_count();
            arc.to_is_lut = true;
            if (arc.from != arc.to) {
              arcs.push_back(arc);
            }
          }
        }
      }
    }
    stats.critical_path = sim::analyze_timing(num_nodes, arcs).critical_path;
  }

  return d;
}

}  // namespace mcfpga::core
