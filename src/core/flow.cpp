#include "core/flow.hpp"

#include "core/closure.hpp"
#include "core/stages.hpp"

namespace mcfpga::core {

CompiledDesign compile(const netlist::MultiContextNetlist& netlist,
                       const arch::FabricSpec& spec,
                       const CompileOptions& options) {
  FlowContext ctx = make_flow_context(netlist, spec, options);
  // One-shot compiles take the plain eight-stage pipeline (the closure
  // pipeline's single iteration is bit-identical, but keeping the default
  // path byte-for-byte untouched makes the equivalence easy to audit).
  run_pipeline(ctx, options.closure_iterations >= 2 ? closure_pipeline()
                                                    : default_pipeline());
  return finalize_design(std::move(ctx));
}

}  // namespace mcfpga::core
