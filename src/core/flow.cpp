#include "core/flow.hpp"

#include "core/stages.hpp"

namespace mcfpga::core {

CompiledDesign compile(const netlist::MultiContextNetlist& netlist,
                       const arch::FabricSpec& spec,
                       const CompileOptions& options) {
  FlowContext ctx = make_flow_context(netlist, spec, options);
  run_pipeline(ctx, default_pipeline());
  return finalize_design(std::move(ctx));
}

}  // namespace mcfpga::core
