// Explicit stages of the compile pipeline.
//
// Each stage is a stateless object that reads and extends a FlowContext —
// the single carrier of every intermediate artifact between the input
// netlist and the programmed fabric.  compile() simply runs
// default_pipeline() over a fresh context; tests, ablation benches, and
// future batch compilers can instead run stages individually, swap one
// out, or stop midway and inspect the artifacts.
//
// Stage order and contracts (each stage requires its predecessors ran):
//   TechMapStage    -> ctx.netlist
//   SharingStage    -> ctx.sharing, ctx.uses
//   PlaneAllocStage -> ctx.planes
//   ClusterStage    -> ctx.clusters, slot maps, I/O terminal tables
//   PlaceStage      -> ctx.spec (auto-grown), ctx.graph, ctx.placement
//   RouteStage      -> ctx.nets_per_context, ctx.timing_specs,
//                      ctx.net_class, ctx.sink_keys, ctx.routing
//   TimingStage     -> ctx.timing_reports, ctx.context_stats
//   ProgramStage    -> ctx.program, ctx.full_bitstream
//
// Timing feeds back into optimization: PlaceStage weights nets by
// logic-depth criticality when options.placer.timing_mode is set, and
// RouteStage hands its timing specs to the router when
// options.router.timing_mode is set (criticality-driven PathFinder).
// With CompileOptions::closure_iterations >= 2 the Place/Route/Timing
// block is driven by the ClosureLoopStage (core/closure.hpp), which
// feeds POST-route criticalities back into re-placement and re-routing.
//
// run_pipeline() times every stage into ctx.stage_timings.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/flow.hpp"

namespace mcfpga::core {

struct FlowTiming;  // core/timing_build.hpp

/// Logical sink of one routed connection, placement-independent: the
/// compile flow keeps these keys (alongside the driving classes) so a
/// closure-loop re-place can rebuild the physical RouteNet lists without
/// re-walking the clustered netlist.
struct SinkKey {
  enum class Kind : std::uint8_t { kPin, kPad };
  Kind kind = Kind::kPin;
  std::size_t cluster = 0;   ///< kPin: cluster index.
  std::size_t pin = 0;       ///< kPin: LB input pin.
  std::size_t terminal = 0;  ///< kPad: I/O terminal index.
};

/// Placement problem of a clustered flow, one net per driver class that
/// anything reads, in ascending class order; net_class[i] is the driving
/// class of problem.nets[i].  build_placement_problem() leaves every
/// criticality at zero, but a consumer must NOT assume they still are
/// (PlaceStage caches its build after folding logic-depth values in) —
/// always overwrite them via apply_class_criticality() before placing.
struct PlacementBuild {
  place::PlacementProblem problem;
  std::vector<std::size_t> net_class;
};

struct FlowContext;

/// Content-addressed stage-cache hook (implemented by cache::FlowCache).
/// run_pipeline() consults it around every stage: before_stage() may
/// satisfy the stage from cached artifacts (returning true skips the
/// stage), and after_stage() lets a freshly computed artifact be
/// published.  core/ defines only the seam; the cache itself lives in
/// src/cache/ and depends on core/, not the other way around.
class StageCacheHook {
 public:
  virtual ~StageCacheHook() = default;
  /// Advances the context's key chain across `stage` and, on a hit,
  /// restores the stage's outputs into `ctx`.  True = stage satisfied.
  virtual bool before_stage(const char* stage, FlowContext& ctx) = 0;
  /// Publishes the outputs `stage` just computed (called only on a miss).
  virtual void after_stage(const char* stage, FlowContext& ctx) = 0;
};

/// Stage-boundary observer: progress streaming plus cooperative
/// cancellation / deadline budgets for long-running services
/// (serve/daemon).  run_pipeline() — and the delta-recompile driver's
/// manual stage blocks — consult it around every stage; returning false
/// from on_stage_start aborts the flow with FlowCancelled, which is the
/// ONLY way a compile stops early, so a job can never be killed halfway
/// through mutating shared state.
class StageObserver {
 public:
  virtual ~StageObserver() = default;
  /// Called before each stage runs (cache hit or miss).  Return false to
  /// abandon the flow (run_pipeline throws FlowCancelled).
  virtual bool on_stage_start(const char* stage) = 0;
  /// Called after each stage with its wall-clock seconds.
  virtual void on_stage_done(const char* stage, double seconds) = 0;
};

/// Carries all intermediate artifacts of one compilation.
struct FlowContext {
  // --- inputs -------------------------------------------------------------
  const netlist::MultiContextNetlist* input = nullptr;
  arch::FabricSpec spec;  ///< Mutated by PlaceStage when auto-sizing.
  CompileOptions options;

  // --- TechMapStage -------------------------------------------------------
  netlist::MultiContextNetlist netlist;  ///< Post tech-map.

  // --- SharingStage -------------------------------------------------------
  netlist::SharingAnalysis sharing;
  std::vector<mapping::ClassUse> uses;

  // --- PlaneAllocStage ----------------------------------------------------
  mapping::PlaneAllocation planes;

  // --- ClusterStage -------------------------------------------------------
  std::vector<Cluster> clusters;
  std::vector<std::size_t> slot_cluster;  ///< slot -> cluster.
  std::vector<std::size_t> slot_output;   ///< slot -> LB output index.
  /// Class id -> primary-input name, for input classes.
  std::unordered_map<std::size_t, std::string> input_class_name;
  /// Output name -> per-context driver class (SIZE_MAX = absent).
  std::map<std::string, std::vector<std::size_t>> output_driver;
  /// Input class -> I/O terminal index.
  std::unordered_map<std::size_t, std::size_t> input_class_terminal;
  std::map<std::string, std::size_t> input_terminals;
  std::map<std::string, std::size_t> output_terminals;
  std::size_t num_terminals = 0;

  // --- PlaceStage ---------------------------------------------------------
  std::unique_ptr<arch::RoutingGraph> graph;
  place::Placement placement;
  /// Logical connection structure cached by PlaceStage in timing mode (it
  /// is placement-independent); RouteStage consumes and clears it,
  /// building its own when absent.
  std::shared_ptr<FlowTiming> flow_timing;
  /// Placement problem cached by PlaceStage for the closure loop (it
  /// depends only on the clustering; net criticalities carry whatever
  /// PlaceStage last applied and must be overwritten per use).  The loop
  /// consumes and clears it, rebuilding when absent.
  std::shared_ptr<PlacementBuild> placement_build;

  // --- RouteStage ---------------------------------------------------------
  std::vector<std::vector<route::RouteNet>> nets_per_context;
  /// Per-context connection timing structure, parallel to
  /// nets_per_context (specs[c].nets[i].sinks[j] times connection (i, j)).
  std::vector<timing::ContextTimingSpec> timing_specs;
  /// net_class[c][i] = driving class of context c's net i — the logical
  /// net identity shared with the placement problem's nets.
  std::vector<std::vector<std::size_t>> net_class;
  /// sink_keys[c][i][j] = logical sink of connection (i, j); with the
  /// placement they regenerate nets_per_context (build_route_nets).
  std::vector<std::vector<std::vector<SinkKey>>> sink_keys;
  route::RouteResult routing;
  /// Cross-iteration PathFinder history (closure loop only; RouteStage
  /// threads it through the router when closure_iterations >= 2).
  route::RouteHistory route_history;
  /// Per-worker router engines (arena scratch + cached timing DAGs),
  /// created on first use by RouteStage and shared with the closure
  /// loop's re-routes so repeated routing reuses warm state.  Pooled and
  /// pool-free routing are bit-identical.
  std::shared_ptr<route::CorePool> router_pool;

  // --- TimingStage --------------------------------------------------------
  std::vector<timing::TimingReport> timing_reports;
  std::vector<ContextStats> context_stats;

  // --- ClosureLoopStage ---------------------------------------------------
  /// One entry per executed closure iteration (empty in one-shot flows).
  std::vector<ClosureIterationStats> closure_stats;

  // --- ProgramStage -------------------------------------------------------
  sim::FabricProgram program;
  config::Bitstream full_bitstream;

  // --- bookkeeping --------------------------------------------------------
  std::vector<StageTiming> stage_timings;

  // --- stage cache (src/cache/) -------------------------------------------
  /// Not owned; null = uncached compile (the default for compile()).
  StageCacheHook* cache = nullptr;
  /// Not owned; null = no progress/cancellation hooks (the default).
  StageObserver* observer = nullptr;
  /// Rolling per-stage content key (cache/key.hpp chain), maintained by
  /// the hook; meaningless while cache_key_valid is false.
  std::uint64_t cache_key = 0;
  bool cache_key_valid = false;
};

/// One pipeline stage.  Stages are stateless; all state lives in the
/// FlowContext, so one stage instance serves any number of compilations.
class Stage {
 public:
  virtual ~Stage() = default;
  virtual const char* name() const = 0;
  virtual void run(FlowContext& ctx) const = 0;
};

class TechMapStage : public Stage {
 public:
  const char* name() const override { return "tech_map"; }
  void run(FlowContext& ctx) const override;
};

class SharingStage : public Stage {
 public:
  const char* name() const override { return "sharing"; }
  void run(FlowContext& ctx) const override;
};

class PlaneAllocStage : public Stage {
 public:
  const char* name() const override { return "plane_alloc"; }
  void run(FlowContext& ctx) const override;
};

class ClusterStage : public Stage {
 public:
  const char* name() const override { return "cluster"; }
  void run(FlowContext& ctx) const override;
};

class PlaceStage : public Stage {
 public:
  const char* name() const override { return "place"; }
  void run(FlowContext& ctx) const override;
};

class RouteStage : public Stage {
 public:
  const char* name() const override { return "route"; }
  void run(FlowContext& ctx) const override;
};

class TimingStage : public Stage {
 public:
  const char* name() const override { return "timing"; }
  void run(FlowContext& ctx) const override;
};

class ProgramStage : public Stage {
 public:
  const char* name() const override { return "program"; }
  void run(FlowContext& ctx) const override;
};

/// Builds the placement problem from a FlowContext that has run
/// ClusterStage (used by PlaceStage and by closure-loop re-placement).
PlacementBuild build_placement_problem(const FlowContext& ctx);

/// Overwrites every net's criticality from the per-class map (0 for
/// absent classes), so a PlacementBuild can be reused across closure
/// iterations.  Shared by PlaceStage (pre-route logic depth) and the
/// closure loop (post-route STA).
void apply_class_criticality(PlacementBuild& build,
                             const std::map<std::size_t, double>& by_class);

/// PlaceStage's fabric-sizing step, exposed for cache-hit replay and the
/// delta-recompile driver: auto-grows ctx.spec (square-ish) until clusters
/// and I/O terminals fit (options.auto_size), validates capacity (throws
/// FlowError otherwise), and (re)builds ctx.graph — which is deterministic
/// in the grown spec, so a cached placement plus this call reproduces
/// PlaceStage's physical world exactly.
void size_fabric_and_build_graph(FlowContext& ctx);

/// The pre-route timing prior PlaceStage folds into net weights in placer
/// timing mode: per driver class, the worst unit-switch (logic depth) STA
/// criticality over its connections and contexts.  Fills ctx.flow_timing
/// as a side effect (it is placement-independent and RouteStage consumes
/// it).  Requires ClusterStage outputs.
std::map<std::size_t, double> logic_depth_class_criticality(FlowContext& ctx);

/// The annealing seed the flow hands the placer: options.placer.seed,
/// with the kSeedFromFlow sentinel resolved to the flow seed.  Shared by
/// PlaceStage and the closure loop so their seed derivations never drift.
std::uint64_t resolved_placer_seed(const CompileOptions& options);

/// Maps the logical nets (ctx.net_class / ctx.sink_keys, filled by
/// RouteStage) onto physical routing-graph nodes under ctx.placement —
/// the re-route half of a closure iteration.
std::vector<std::vector<route::RouteNet>> build_route_nets(
    const FlowContext& ctx);

/// One cluster's LUT programming — ProgramStage's per-LB step, exposed so
/// the delta-recompile driver can regenerate only the clusters an edit
/// touched.  Requires ClusterStage + PlaceStage outputs.
sim::LbConfig build_lb_config(const FlowContext& ctx, std::size_t k);

/// Appends one programmed LB's bitstream rows (every used output's LUT
/// bits, then the mode/control bits) exactly as ProgramStage emits them.
/// Returns the number of rows appended.
std::size_t append_lb_rows(config::Bitstream& bitstream,
                           const sim::LbConfig& lb, std::size_t num_contexts);

/// Seeds a context from the flow inputs (validates both).
FlowContext make_flow_context(const netlist::MultiContextNetlist& netlist,
                              const arch::FabricSpec& spec,
                              const CompileOptions& options);

/// The standard eight-stage sequence, as static instances.
const std::vector<const Stage*>& default_pipeline();

/// Runs `stages` over `ctx` in order, appending one StageTiming each.
void run_pipeline(FlowContext& ctx, const std::vector<const Stage*>& stages);

/// Moves the finished artifacts out of `ctx` into a CompiledDesign.
CompiledDesign finalize_design(FlowContext&& ctx);

}  // namespace mcfpga::core
