// Human-readable reports over compiled designs (used by examples/benches).
#pragma once

#include <ostream>

#include "core/flow.hpp"

namespace mcfpga::core {

/// Prints a one-screen summary: fabric, mapping, clustering, placement,
/// routing and timing statistics.
void print_design_report(std::ostream& os, const CompiledDesign& design);

}  // namespace mcfpga::core
