#include "core/report.hpp"

#include "common/strings.hpp"
#include "common/table.hpp"
#include "config/stats.hpp"

namespace mcfpga::core {

void print_design_report(std::ostream& os, const CompiledDesign& design) {
  os << "== compiled design ==\n";
  os << "fabric: " << design.fabric.describe() << "\n";

  Table t({"metric", "value"});
  t.add_row({"LUT ops (post tech-map)",
             fmt_count(design.netlist.total_lut_ops())});
  t.add_row({"sharing classes (LUT)",
             fmt_count(design.sharing.shared_lut_classes())});
  t.add_row({"LUT ops merged away",
             fmt_count(design.sharing.merged_lut_ops())});
  t.add_row({"slots", fmt_count(design.planes.num_slots())});
  t.add_row({"logic blocks", fmt_count(design.clusters.size())});
  t.add_row({"LUT memory used (bits)", fmt_count(design.planes.used_bits())});
  t.add_row(
      {"LUT memory duplicated (bits)", fmt_count(design.planes.duplicated_bits())});
  t.add_row({"size-controller SEs",
             fmt_count(design.planes.controller_se_cost())});
  t.add_row({"placement cost (HPWL)", fmt_double(design.placement.cost, 1)});
  t.add_row({"bitstream rows", fmt_count(design.full_bitstream.num_rows())});
  t.print(os);

  Table ct({"context", "nets", "switches crossed", "critical path (SE units)",
            "worst slack", "shared wires", "timing arcs"});
  for (std::size_t c = 0; c < design.context_stats.size(); ++c) {
    const auto& s = design.context_stats[c];
    std::string slack = "-";
    std::string arcs = "-";
    if (c < design.timing_reports.size()) {
      slack = fmt_double(design.timing_reports[c].worst_slack, 1);
      arcs = fmt_count(design.timing_reports[c].num_arcs);
    }
    ct.add_row({std::to_string(c), fmt_count(s.nets),
                fmt_count(s.switches_crossed),
                fmt_double(s.critical_path, 1), slack,
                fmt_count(s.cross_context_conflicts), arcs});
  }
  ct.print(os);

  if (!design.routing.negotiation_stats.empty()) {
    Table nt({"negotiation round", "conflicts", "worst switches",
              "worst critical path", "ms", "kept"});
    for (const auto& r : design.routing.negotiation_stats) {
      nt.add_row({std::to_string(r.round), fmt_count(r.conflicts),
                  fmt_count(r.worst_critical_switches),
                  fmt_double(r.worst_critical_path, 1),
                  fmt_double(r.seconds * 1e3, 2), r.kept ? "yes" : ""});
    }
    nt.print(os);
  }

  if (!design.closure_stats.empty()) {
    Table cl({"closure iter", "critical path", "worst slack", "wirelength",
              "ms"});
    for (const auto& s : design.closure_stats) {
      cl.add_row({std::to_string(s.iteration),
                  fmt_double(s.critical_path, 1), fmt_double(s.worst_slack, 1),
                  fmt_count(s.wirelength), fmt_double(s.seconds * 1e3, 2)});
    }
    cl.print(os);
  }

  const CacheStats& cs = design.cache;
  if (cs.hits + cs.misses + cs.evictions != 0 || cs.delta ||
      !cs.delta_fallback.empty() || !cs.delta_fallback_counts.empty()) {
    Table cache({"stage cache", "value"});
    cache.add_row({"stage hits", fmt_count(cs.hits)});
    cache.add_row({"stage misses", fmt_count(cs.misses)});
    cache.add_row({"evictions", fmt_count(cs.evictions)});
    cache.add_row({"interned patterns", fmt_count(cs.interned_patterns)});
    cache.add_row({"pattern dedup hits", fmt_count(cs.pattern_dedup_hits)});
    if (cs.delta) {
      cache.add_row({"delta recompile", "yes"});
      cache.add_row({"nets invalidated", fmt_count(cs.nets_invalidated)});
      cache.add_row({"nets re-routed", fmt_count(cs.nets_rerouted)});
      cache.add_row({"anneal moves saved", fmt_count(cs.anneal_moves_saved)});
    }
    if (!cs.delta_fallback.empty()) {
      cache.add_row({"delta fallback", cs.delta_fallback});
    }
    // Per-reason breakdown over the service's lifetime, so a fleet of
    // delta recompiles that keeps degrading to full compiles says why.
    for (const auto& [reason, count] : cs.delta_fallback_counts) {
      cache.add_row({"fallbacks: " + reason, fmt_count(count)});
    }
    cache.print(os);
  }

  const config::BitstreamStats stats =
      config::compute_stats(design.full_bitstream);
  config::print_stats(os, stats, "fabric bitstream statistics");
}

}  // namespace mcfpga::core
