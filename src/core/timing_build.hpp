// Logical timing structure of a clustered design, shared by the three
// consumers that previously each re-derived (or could not derive) it:
//
//   * PlaceStage — pre-route logic-depth criticalities (unit switch
//     estimates) that weight the annealer's nets in timing mode;
//   * RouteStage — the RouteNet lists AND the per-context timing specs the
//     timing-driven router re-times between rip-up iterations, built from
//     ONE walk so net/sink indices align by construction;
//   * TimingStage — the post-route per-context TimingReports.
//
// Everything here is placement-independent: sinks are logical keys
// ((cluster, pin) or output terminal), and timing nodes are slot ids
// followed by I/O terminal ids — the same numbering the old ProgramStage
// timing pass used.  RouteStage maps the keys to physical routing-graph
// nodes after placement.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/stages.hpp"
#include "timing/net_timing.hpp"

namespace mcfpga::core {

// SinkKey (the logical sink of one routed connection) lives in
// core/stages.hpp — FlowContext retains the keys across closure-loop
// iterations.

/// Per-context connection structure, nets in ascending driver-class order
/// (the order RouteStage emits RouteNets in).
struct FlowTiming {
  /// net_class[c][i] = driving class of context c's net i.
  std::vector<std::vector<std::size_t>> net_class;
  /// sink_keys[c][i][j] = logical sink j of net i.
  std::vector<std::vector<std::vector<SinkKey>>> sink_keys;
  /// Timing DAG structure parallel to the above (specs[c].nets[i].sinks[j]
  /// holds the reader arcs of connection (i, j)).
  std::vector<timing::ContextTimingSpec> specs;
};

/// Builds the structure from a FlowContext that has run ClusterStage.
FlowTiming build_flow_timing(const FlowContext& ctx);

}  // namespace mcfpga::core
