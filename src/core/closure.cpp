#include "core/closure.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "timing/net_timing.hpp"

namespace mcfpga::core {

namespace {

/// Refine-anneal policy: the re-place perturbs the previous placement
/// rather than scrambling it, so the initial temperature shrinks and the
/// sweep budget halves relative to the user's annealing options.
constexpr double kRefineTemperatureScale = 0.02;
/// Decorrelates the refine iterations' RNG streams from each other and
/// from the first-iteration anneal (deterministic for a fixed flow seed).
constexpr std::uint64_t kRefineSeedStride = 1000003;

double worst_critical_path(const FlowContext& ctx) {
  double worst = 0.0;
  for (const auto& report : ctx.timing_reports) {
    worst = std::max(worst, report.critical_path);
  }
  return worst;
}

std::size_t total_wirelength(const FlowContext& ctx) {
  std::size_t wirelength = 0;
  for (const auto& summary : ctx.routing.context_summary) {
    wirelength += summary.wire_nodes_used;
  }
  return wirelength;
}

/// The artifacts a closure iteration may change.  The logical structure
/// (timing_specs, net_class, sink_keys) is placement-independent and
/// shared by every iteration, so it stays in the context untouched.
struct Snapshot {
  place::Placement placement;
  std::vector<std::vector<route::RouteNet>> nets;
  route::RouteResult routing;
  std::vector<timing::TimingReport> reports;
  std::vector<ContextStats> stats;
};

Snapshot capture(const FlowContext& ctx) {
  return Snapshot{ctx.placement, ctx.nets_per_context, ctx.routing,
                  ctx.timing_reports, ctx.context_stats};
}

void restore(FlowContext& ctx, Snapshot&& s) {
  ctx.placement = std::move(s.placement);
  ctx.nets_per_context = std::move(s.nets);
  ctx.routing = std::move(s.routing);
  ctx.timing_reports = std::move(s.reports);
  ctx.context_stats = std::move(s.stats);
}

/// Post-route criticality of every driver class: the worst exported
/// connection criticality over the class's connections and contexts —
/// the value folded into the re-place net weights.
std::map<std::size_t, double> post_route_class_criticality(
    const FlowContext& ctx) {
  std::map<std::size_t, double> by_class;
  for (std::size_t c = 0; c < ctx.timing_specs.size(); ++c) {
    const timing::ContextTimingSpec& spec = ctx.timing_specs[c];
    std::vector<std::vector<std::size_t>> switches(spec.nets.size());
    for (std::size_t i = 0; i < spec.nets.size(); ++i) {
      const auto& paths = ctx.routing.nets[c][i].paths;
      switches[i].resize(paths.size());
      for (std::size_t j = 0; j < paths.size(); ++j) {
        switches[i][j] = paths[j].switch_count();
      }
    }
    const std::vector<std::vector<double>> crit =
        timing::connection_criticalities(spec, ctx.timing_reports[c],
                                         switches);
    for (std::size_t i = 0; i < crit.size(); ++i) {
      double worst = 0.0;
      for (const double value : crit[i]) {
        worst = std::max(worst, value);
      }
      auto [it, inserted] = by_class.emplace(ctx.net_class[c][i], worst);
      if (!inserted) {
        it->second = std::max(it->second, worst);
      }
    }
  }
  return by_class;
}

}  // namespace

void ClosureLoopStage::run(FlowContext& ctx) const {
  using clock = std::chrono::steady_clock;
  const std::size_t iterations = ctx.options.closure_iterations;

  const auto record = [&](std::size_t iter, double budget,
                          const clock::time_point& start) {
    ClosureIterationStats s;
    s.iteration = iter;
    s.critical_path = worst_critical_path(ctx);
    s.worst_slack = budget - s.critical_path;
    s.wirelength = total_wirelength(ctx);
    s.seconds = std::chrono::duration<double>(clock::now() - start).count();
    ctx.closure_stats.push_back(s);
    ctx.stage_timings.push_back(
        StageTiming{"closure.iter" + std::to_string(iter), s.seconds});
    return s;
  };

  // Iteration 1: exactly the one-shot Place/Route/Timing block, so a
  // single-iteration closure pipeline is bit-identical to the plain one.
  clock::time_point start = clock::now();
  PlaceStage().run(ctx);
  RouteStage().run(ctx);
  TimingStage().run(ctx);
  const double budget = worst_critical_path(ctx);
  record(1, budget, start);
  if (iterations == 1) {
    return;
  }

  Snapshot best = capture(ctx);
  double best_slack = 0.0;  // iteration 1 defines the budget: slack 0

  const std::uint64_t base_seed = resolved_placer_seed(ctx.options);

  // The placement problem depends only on the clustering; PlaceStage
  // cached it, so only the criticalities refresh per iteration.
  PlacementBuild build = ctx.placement_build
                             ? std::move(*ctx.placement_build)
                             : build_placement_problem(ctx);
  ctx.placement_build.reset();

  for (std::size_t iter = 2; iter <= iterations; ++iter) {
    start = clock::now();

    // Re-place: post-route criticalities become exact-integer weight
    // bumps (place::effective_net_weight), and the anneal perturbs the
    // previous placement at reduced temperature.
    apply_class_criticality(build, post_route_class_criticality(ctx));
    place::PlacerOptions placer_options = ctx.options.placer;
    placer_options.timing_mode = true;  // the loop exists to chase slack
    placer_options.seed = base_seed + kRefineSeedStride * (iter - 1);
    placer_options.initial_temperature_factor *= kRefineTemperatureScale;
    placer_options.sweeps =
        std::max<std::size_t>(1, placer_options.sweeps / 2);
    const place::Placement previous = std::move(ctx.placement);
    ctx.placement =
        place::place(build.problem, *ctx.graph, placer_options, &previous);

    // Re-route under the new placement: timing-driven, with the
    // congestion history of every earlier iteration carried in.
    ctx.nets_per_context = build_route_nets(ctx);
    route::RouterOptions router_options = ctx.options.router;
    router_options.timing_mode = true;
    const route::Router router(*ctx.graph, router_options);
    ctx.routing = router.route(ctx.nets_per_context, &ctx.timing_specs,
                               &ctx.route_history);
    if (!ctx.routing.success) {
      // A refine route that cannot converge is a failed experiment, not a
      // failed compile: keep the best iteration and stop.
      break;
    }
    TimingStage().run(ctx);
    const ClosureIterationStats s = record(iter, budget, start);

    const double improvement = s.worst_slack - best_slack;
    if (improvement > 0.0) {
      best = capture(ctx);
      best_slack = s.worst_slack;
    }
    if (improvement <= ctx.options.closure_slack_tolerance) {
      break;
    }
  }

  // The best-slack iteration wins (ties toward the earliest), so closure
  // output is never worse than one-shot.
  restore(ctx, std::move(best));
}

const std::vector<const Stage*>& closure_pipeline() {
  static const TechMapStage tech_map;
  static const SharingStage sharing;
  static const PlaneAllocStage plane_alloc;
  static const ClusterStage cluster;
  static const ClosureLoopStage closure;
  static const ProgramStage program;
  static const std::vector<const Stage*> stages = {
      &tech_map, &sharing, &plane_alloc, &cluster, &closure, &program};
  return stages;
}

}  // namespace mcfpga::core
