#include "core/closure.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "route/router_core.hpp"
#include "timing/net_timing.hpp"

namespace mcfpga::core {

namespace {

/// Refine-anneal policy: the re-place perturbs the previous placement
/// rather than scrambling it, so the initial temperature shrinks and the
/// sweep budget halves relative to the user's annealing options.
constexpr double kRefineTemperatureScale = 0.02;
/// Decorrelates the refine iterations' RNG streams from each other and
/// from the first-iteration anneal (deterministic for a fixed flow seed).
constexpr std::uint64_t kRefineSeedStride = 1000003;

double worst_critical_path(const FlowContext& ctx) {
  double worst = 0.0;
  for (const auto& report : ctx.timing_reports) {
    worst = std::max(worst, report.critical_path);
  }
  return worst;
}

std::size_t total_wirelength(const FlowContext& ctx) {
  std::size_t wirelength = 0;
  for (const auto& summary : ctx.routing.context_summary) {
    wirelength += summary.wire_nodes_used;
  }
  return wirelength;
}

/// The artifacts a closure iteration may change.  The logical structure
/// (timing_specs, net_class, sink_keys) is placement-independent and
/// shared by every iteration, so it stays in the context untouched.
struct Snapshot {
  place::Placement placement;
  std::vector<std::vector<route::RouteNet>> nets;
  route::RouteResult routing;
  std::vector<timing::TimingReport> reports;
  std::vector<ContextStats> stats;
};

Snapshot capture(const FlowContext& ctx) {
  return Snapshot{ctx.placement, ctx.nets_per_context, ctx.routing,
                  ctx.timing_reports, ctx.context_stats};
}

void restore(FlowContext& ctx, Snapshot&& s) {
  ctx.placement = std::move(s.placement);
  ctx.nets_per_context = std::move(s.nets);
  ctx.routing = std::move(s.routing);
  ctx.timing_reports = std::move(s.reports);
  ctx.context_stats = std::move(s.stats);
}

/// Post-route criticality digest of one closure iteration: the per-class
/// worst connection criticality (folded into the re-place net weights)
/// plus the mean over every connection and context — the slack
/// distribution summary the adaptive refine policy keys on.
struct PostRouteCriticality {
  std::map<std::size_t, double> by_class;
  double mean = 0.0;
};

PostRouteCriticality post_route_criticality(const FlowContext& ctx) {
  PostRouteCriticality out;
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t c = 0; c < ctx.timing_specs.size(); ++c) {
    const timing::ContextTimingSpec& spec = ctx.timing_specs[c];
    std::vector<std::vector<std::size_t>> switches(spec.nets.size());
    for (std::size_t i = 0; i < spec.nets.size(); ++i) {
      const auto& paths = ctx.routing.nets[c][i].paths;
      switches[i].resize(paths.size());
      for (std::size_t j = 0; j < paths.size(); ++j) {
        switches[i][j] = paths[j].switch_count();
      }
    }
    const std::vector<std::vector<double>> crit =
        timing::connection_criticalities(spec, ctx.timing_reports[c],
                                         switches);
    for (std::size_t i = 0; i < crit.size(); ++i) {
      double worst = 0.0;
      for (const double value : crit[i]) {
        worst = std::max(worst, value);
        sum += value;
        ++count;
      }
      auto [it, inserted] = out.by_class.emplace(ctx.net_class[c][i], worst);
      if (!inserted) {
        it->second = std::max(it->second, worst);
      }
    }
  }
  out.mean = count > 0 ? sum / static_cast<double>(count) : 0.0;
  return out;
}

/// The refine anneal's knobs for one closure iteration.  The historical
/// policy (closure_adaptive_refine off) is the fixed
/// kRefineTemperatureScale and a halved sweep budget; the adaptive policy
/// reads the post-route slack distribution instead — tight slack
/// everywhere (mean criticality -> 1) earns a larger shake and the full
/// sweep budget, a lone hot path (mean -> 0) keeps the gentle refine.
/// Both are pure functions of the iteration's STA, so determinism holds.
struct RefinePolicy {
  double temperature_scale = kRefineTemperatureScale;
  std::size_t sweeps = 1;
};

RefinePolicy refine_policy(const CompileOptions& options,
                           double mean_criticality) {
  RefinePolicy policy;
  const std::size_t base = std::max<std::size_t>(1, options.placer.sweeps);
  if (!options.closure_adaptive_refine) {
    policy.temperature_scale = kRefineTemperatureScale;
    policy.sweeps = std::max<std::size_t>(1, base / 2);
    return policy;
  }
  policy.temperature_scale =
      kRefineTemperatureScale * (0.5 + 1.5 * mean_criticality);
  policy.sweeps = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(base) * (0.5 + 0.5 * mean_criticality) +
             0.5));
  return policy;
}

}  // namespace

void ClosureLoopStage::run(FlowContext& ctx) const {
  using clock = std::chrono::steady_clock;
  const std::size_t iterations = ctx.options.closure_iterations;

  const auto record = [&](std::size_t iter, double budget,
                          const clock::time_point& start) {
    ClosureIterationStats s;
    s.iteration = iter;
    s.critical_path = worst_critical_path(ctx);
    s.worst_slack = budget - s.critical_path;
    s.wirelength = total_wirelength(ctx);
    s.seconds = std::chrono::duration<double>(clock::now() - start).count();
    ctx.closure_stats.push_back(s);
    ctx.stage_timings.push_back(
        StageTiming{"closure.iter" + std::to_string(iter), s.seconds});
    return s;
  };

  // Iteration 1: exactly the one-shot Place/Route/Timing block, so a
  // single-iteration closure pipeline is bit-identical to the plain one.
  clock::time_point start = clock::now();
  PlaceStage().run(ctx);
  RouteStage().run(ctx);
  TimingStage().run(ctx);
  const double budget = worst_critical_path(ctx);
  record(1, budget, start);
  if (iterations == 1) {
    return;
  }

  Snapshot best = capture(ctx);
  double best_slack = 0.0;  // iteration 1 defines the budget: slack 0

  const std::uint64_t base_seed = resolved_placer_seed(ctx.options);

  // The placement problem depends only on the clustering; PlaceStage
  // cached it, so only the criticalities refresh per iteration.
  PlacementBuild build = ctx.placement_build
                             ? std::move(*ctx.placement_build)
                             : build_placement_problem(ctx);
  ctx.placement_build.reset();

  for (std::size_t iter = 2; iter <= iterations; ++iter) {
    start = clock::now();

    // Re-place: post-route criticalities become exact-integer weight
    // bumps (place::effective_net_weight), and the anneal perturbs the
    // previous placement at a temperature the refine policy picks (fixed
    // constants by default, slack-distribution-derived when
    // closure_adaptive_refine is on).
    const PostRouteCriticality crit = post_route_criticality(ctx);
    apply_class_criticality(build, crit.by_class);
    const RefinePolicy policy = refine_policy(ctx.options, crit.mean);
    place::PlacerOptions placer_options = ctx.options.placer;
    placer_options.timing_mode = true;  // the loop exists to chase slack
    placer_options.seed = base_seed + kRefineSeedStride * (iter - 1);
    placer_options.initial_temperature_factor *= policy.temperature_scale;
    placer_options.sweeps = policy.sweeps;
    const place::Placement previous = std::move(ctx.placement);
    ctx.placement =
        place::place(build.problem, *ctx.graph, placer_options, &previous);

    // Re-route under the new placement: timing-driven, with the
    // congestion history of every earlier iteration carried in.  Under
    // negotiated cross-context routing the scheduler additionally gets
    // per-context criticalities from the PREVIOUS iteration's STA: each
    // context's critical path as a fraction of the worst context's
    // (equivalently 1 - slack/budget under the shared budget), so the
    // context with the least slack claims wires first and exports the
    // strongest pressure.
    ctx.nets_per_context = build_route_nets(ctx);
    route::RouterOptions router_options = ctx.options.router;
    router_options.timing_mode = true;
    std::vector<double> context_crit;
    const std::vector<double>* context_crit_ptr = nullptr;
    if (router_options.cross_context_mode !=
        route::CrossContextMode::kOff) {
      const double worst = worst_critical_path(ctx);
      context_crit.resize(ctx.timing_reports.size());
      for (std::size_t c = 0; c < ctx.timing_reports.size(); ++c) {
        context_crit[c] =
            worst > 0.0 ? ctx.timing_reports[c].critical_path / worst : 1.0;
      }
      context_crit_ptr = &context_crit;
    }
    const route::Router router(*ctx.graph, router_options);
    if (!ctx.router_pool) {
      ctx.router_pool = std::make_shared<route::CorePool>();
    }
    ctx.routing =
        router.route(ctx.nets_per_context, &ctx.timing_specs,
                     &ctx.route_history, context_crit_ptr,
                     ctx.router_pool.get());
    if (!ctx.routing.success) {
      // A refine route that cannot converge is a failed experiment, not a
      // failed compile: keep the best iteration and stop.
      break;
    }
    TimingStage().run(ctx);
    const ClosureIterationStats s = record(iter, budget, start);

    const double improvement = s.worst_slack - best_slack;
    if (improvement > 0.0) {
      best = capture(ctx);
      best_slack = s.worst_slack;
    }
    if (improvement <= ctx.options.closure_slack_tolerance) {
      break;
    }
  }

  // The best-slack iteration wins (ties toward the earliest), so closure
  // output is never worse than one-shot.
  restore(ctx, std::move(best));
}

const std::vector<const Stage*>& closure_pipeline() {
  static const TechMapStage tech_map;
  static const SharingStage sharing;
  static const PlaneAllocStage plane_alloc;
  static const ClusterStage cluster;
  static const ClosureLoopStage closure;
  static const ProgramStage program;
  static const std::vector<const Stage*> stages = {
      &tech_map, &sharing, &plane_alloc, &cluster, &closure, &program};
  return stages;
}

}  // namespace mcfpga::core
