#include "core/stages.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_set>

#include "common/error.hpp"
#include "config/context_id.hpp"
#include "core/timing_build.hpp"
#include "route/router_core.hpp"
#include "mapping/context_merge.hpp"
#include "mapping/tech_map.hpp"
#include "timing/net_timing.hpp"
#include "timing/timing_graph.hpp"

namespace mcfpga::core {

namespace {

using mapping::ClassUse;

/// Union-append `extra` into `pins`, preserving first-seen order.
void merge_pins(std::vector<std::size_t>& pins,
                const std::vector<std::size_t>& extra) {
  for (const std::size_t p : extra) {
    if (std::find(pins.begin(), pins.end(), p) == pins.end()) {
      pins.push_back(p);
    }
  }
}

std::size_t pin_of(const Cluster& cluster, std::size_t cls) {
  const auto it =
      std::find(cluster.pin_signals.begin(), cluster.pin_signals.end(), cls);
  MCFPGA_CHECK(it != cluster.pin_signals.end(),
               "signal not present on cluster pins");
  return static_cast<std::size_t>(it - cluster.pin_signals.begin());
}

/// Pads attached at each perimeter cell (matching RoutingGraph::build_pads).
std::size_t pads_available(const arch::FabricSpec& s) {
  const std::size_t perimeter = s.width <= 1 || s.height <= 1
                                    ? s.num_cells()
                                    : 2 * s.width + 2 * s.height - 4;
  return 2 * perimeter;
}

}  // namespace

// --- TechMapStage ------------------------------------------------------------

void TechMapStage::run(FlowContext& ctx) const {
  MCFPGA_REQUIRE(ctx.input != nullptr, "flow context has no input netlist");
  const std::size_t max_inputs =
      ctx.spec.logic_block.base_inputs +
      config::num_id_bits(ctx.spec.num_contexts);
  ctx.netlist = mapping::decompose_to_arity(*ctx.input, max_inputs);
}

// --- SharingStage ------------------------------------------------------------

void SharingStage::run(FlowContext& ctx) const {
  ctx.sharing = netlist::analyze_sharing(ctx.netlist);
  ctx.uses = mapping::lut_class_uses(ctx.netlist, ctx.sharing);
}

// --- PlaneAllocStage ---------------------------------------------------------

void PlaneAllocStage::run(FlowContext& ctx) const {
  ctx.planes = mapping::allocate_planes(
      ctx.uses, ctx.spec.logic_block.base_inputs, ctx.spec.num_contexts,
      ctx.spec.logic_block.control);
}

// --- ClusterStage ------------------------------------------------------------

void ClusterStage::run(FlowContext& ctx) const {
  const std::size_t n = ctx.spec.num_contexts;

  // Slots sharing a logic block share its input pins, so (a) the union of
  // their fanin signals must fit the mode's inputs and (b) no slot may feed
  // another slot in the same block — the block evaluates only when ALL its
  // pins are resolved, so an intra-block dependency would deadlock it.
  ctx.slot_cluster.assign(ctx.planes.slots.size(), SIZE_MAX);
  ctx.slot_output.assign(ctx.planes.slots.size(), SIZE_MAX);
  std::vector<std::vector<std::size_t>> cluster_produces;
  const auto slot_produces = [&](std::size_t s) {
    std::vector<std::size_t> out;
    for (const auto& e : ctx.planes.slots[s].entries) {
      out.push_back(e.use.cls);
    }
    return out;
  };
  for (std::size_t s = 0; s < ctx.planes.slots.size(); ++s) {
    const auto& slot = ctx.planes.slots[s];
    std::vector<std::size_t> pins;
    for (const auto& e : slot.entries) {
      merge_pins(pins, e.use.fanin_classes);
    }
    MCFPGA_CHECK(pins.size() <= slot.mode.inputs,
                 "slot fanin exceeds its mode inputs");
    const std::vector<std::size_t> produces = slot_produces(s);
    bool placed = false;
    for (std::size_t k = 0; k < ctx.clusters.size() && !placed; ++k) {
      Cluster& cl = ctx.clusters[k];
      if (cl.mode != slot.mode ||
          cl.slots.size() >= ctx.spec.logic_block.num_outputs) {
        continue;
      }
      std::vector<std::size_t> merged = cl.pin_signals;
      merge_pins(merged, pins);
      if (merged.size() > cl.mode.inputs) {
        continue;
      }
      // Reject intra-block dependencies in either direction.
      bool dependent = false;
      for (const std::size_t p : merged) {
        if (std::find(produces.begin(), produces.end(), p) !=
                produces.end() ||
            std::find(cluster_produces[k].begin(), cluster_produces[k].end(),
                      p) != cluster_produces[k].end()) {
          dependent = true;
          break;
        }
      }
      if (dependent) {
        continue;
      }
      ctx.slot_cluster[s] = k;
      ctx.slot_output[s] = cl.slots.size();
      cl.slots.push_back(s);
      cl.pin_signals = std::move(merged);
      cluster_produces[k].insert(cluster_produces[k].end(), produces.begin(),
                                 produces.end());
      placed = true;
    }
    if (!placed) {
      Cluster cl;
      cl.mode = slot.mode;
      cl.slots.push_back(s);
      cl.pin_signals = pins;
      ctx.slot_cluster[s] = ctx.clusters.size();
      ctx.slot_output[s] = 0;
      ctx.clusters.push_back(std::move(cl));
      cluster_produces.push_back(produces);
    }
  }

  // I/O terminal discovery: class id -> primary-input name.
  for (const auto& cls : ctx.sharing.classes) {
    if (cls.arity == 0 && !cls.members.empty()) {
      const auto& [c, node] = cls.members.front();
      ctx.input_class_name.emplace(cls.id,
                                   ctx.netlist.context(c).node(node).name);
    }
  }
  // Output name -> per-context driver class.
  for (const std::string& name : ctx.netlist.all_output_names()) {
    ctx.output_driver.emplace(name, std::vector<std::size_t>(n, SIZE_MAX));
  }
  for (std::size_t c = 0; c < n; ++c) {
    for (const auto& out : ctx.netlist.context(c).outputs()) {
      ctx.output_driver[out.name][c] =
          ctx.sharing.class_of[c][static_cast<std::size_t>(out.node)];
    }
  }
  // Input classes that must reach the fabric: logic fanins + direct PO taps.
  std::unordered_set<std::size_t> needed_inputs;
  for (const auto& cl : ctx.clusters) {
    for (const std::size_t sig : cl.pin_signals) {
      if (ctx.input_class_name.count(sig) != 0) {
        needed_inputs.insert(sig);
      }
    }
  }
  for (const auto& [name, drivers] : ctx.output_driver) {
    for (const std::size_t cls : drivers) {
      if (cls != SIZE_MAX && ctx.input_class_name.count(cls) != 0) {
        needed_inputs.insert(cls);
      }
    }
  }

  // Terminal numbering: inputs (sorted by name for determinism), then
  // outputs (sorted by name).
  std::vector<std::pair<std::string, std::size_t>> input_list;
  for (const std::size_t cls : needed_inputs) {
    input_list.emplace_back(ctx.input_class_name.at(cls), cls);
  }
  std::sort(input_list.begin(), input_list.end());
  for (std::size_t i = 0; i < input_list.size(); ++i) {
    ctx.input_terminals[input_list[i].first] = i;
    ctx.input_class_terminal[input_list[i].second] = i;
  }
  std::size_t next_terminal = input_list.size();
  for (const auto& [name, drivers] : ctx.output_driver) {
    ctx.output_terminals[name] = next_terminal++;
  }
  ctx.num_terminals = next_terminal;
}

// --- PlaceStage --------------------------------------------------------------

PlacementBuild build_placement_problem(const FlowContext& ctx) {
  PlacementBuild out;
  place::PlacementProblem& prob = out.problem;
  prob.num_clusters = ctx.clusters.size();
  prob.num_io_terminals = ctx.num_terminals;

  // One placement net per driver class that anything reads.
  struct NetAccum {
    place::Terminal driver;
    std::vector<place::Terminal> sinks;
    std::size_t weight = 0;
  };
  std::map<std::size_t, NetAccum> by_class;
  const auto driver_terminal = [&](std::size_t cls) {
    const auto it = ctx.input_class_terminal.find(cls);
    if (it != ctx.input_class_terminal.end()) {
      return place::Terminal::io(it->second);
    }
    return place::Terminal::cluster(
        ctx.slot_cluster[ctx.planes.slot_of_class.at(cls)]);
  };
  for (std::size_t k = 0; k < ctx.clusters.size(); ++k) {
    for (const std::size_t sig : ctx.clusters[k].pin_signals) {
      auto& acc = by_class[sig];
      if (acc.sinks.empty() && acc.weight == 0) {
        acc.driver = driver_terminal(sig);
      }
      acc.sinks.push_back(place::Terminal::cluster(k));
      ++acc.weight;
    }
  }
  for (const auto& [name, drivers] : ctx.output_driver) {
    const std::size_t term = ctx.output_terminals.at(name);
    for (const std::size_t cls : drivers) {
      if (cls == SIZE_MAX) {
        continue;
      }
      auto& acc = by_class[cls];
      if (acc.sinks.empty() && acc.weight == 0) {
        acc.driver = driver_terminal(cls);
      }
      acc.sinks.push_back(place::Terminal::io(term));
      ++acc.weight;
    }
  }
  for (auto& [cls, acc] : by_class) {
    place::PlacementNet net;
    net.driver = acc.driver;
    net.sinks = std::move(acc.sinks);
    net.weight = std::max<std::size_t>(acc.weight, 1);
    prob.nets.push_back(std::move(net));
    out.net_class.push_back(cls);
  }
  return out;
}

void apply_class_criticality(PlacementBuild& build,
                             const std::map<std::size_t, double>& by_class) {
  for (std::size_t i = 0; i < build.problem.nets.size(); ++i) {
    const auto it = by_class.find(build.net_class[i]);
    build.problem.nets[i].criticality =
        it != by_class.end() ? it->second : 0.0;
  }
}

std::uint64_t resolved_placer_seed(const CompileOptions& options) {
  return options.placer.seed == place::PlacerOptions::kSeedFromFlow
             ? options.seed
             : options.placer.seed;
}

void size_fabric_and_build_graph(FlowContext& ctx) {
  if (ctx.options.auto_size) {
    while (ctx.spec.num_cells() < ctx.clusters.size() ||
           pads_available(ctx.spec) < ctx.num_terminals) {
      if (ctx.spec.width <= ctx.spec.height) {
        ++ctx.spec.width;
      } else {
        ++ctx.spec.height;
      }
    }
  }
  if (ctx.spec.num_cells() < ctx.clusters.size()) {
    throw FlowError("fabric too small: " +
                    std::to_string(ctx.clusters.size()) +
                    " logic blocks needed, " +
                    std::to_string(ctx.spec.num_cells()) +
                    " cells available");
  }
  ctx.graph = std::make_unique<arch::RoutingGraph>(ctx.spec);
  if (ctx.graph->num_pads() < ctx.num_terminals) {
    throw FlowError("fabric has too few I/O pads");
  }
}

std::map<std::size_t, double> logic_depth_class_criticality(FlowContext& ctx) {
  // Cache the structure for RouteStage — it depends only on the
  // clustering, not on any placement.
  ctx.flow_timing = std::make_shared<FlowTiming>(build_flow_timing(ctx));
  const FlowTiming& ft = *ctx.flow_timing;
  std::map<std::size_t, double> class_criticality;
  for (std::size_t c = 0; c < ctx.spec.num_contexts; ++c) {
    const timing::ConnectionArcs arcs(ft.specs[c]);
    timing::TimingGraph sta(ft.specs[c].num_nodes, arcs.arcs());
    sta.analyze();
    for (std::size_t i = 0; i < ft.specs[c].nets.size(); ++i) {
      double crit = 0.0;
      for (std::size_t j = 0; j < ft.specs[c].nets[i].sinks.size(); ++j) {
        crit = std::max(
            crit, arcs.connection_criticality(sta, arcs.connection(i, j)));
      }
      auto [it, inserted] =
          class_criticality.emplace(ft.net_class[c][i], crit);
      if (!inserted) {
        it->second = std::max(it->second, crit);
      }
    }
  }
  return class_criticality;
}

void PlaceStage::run(FlowContext& ctx) const {
  size_fabric_and_build_graph(ctx);

  PlacementBuild build = build_placement_problem(ctx);
  place::PlacementProblem& prob = build.problem;
  // Pre-route timing-driven weighting: with no routing yet, the honest
  // criticality is logic depth — the unit-switch STA prior.  Worst
  // criticality over a class's connections and contexts bumps its
  // placement net, pulling deep paths tight before the router sees them.
  if (ctx.options.placer.timing_mode) {
    apply_class_criticality(build, logic_depth_class_criticality(ctx));
  }
  place::PlacerOptions placer_options = ctx.options.placer;
  // Default the placer seed from the flow seed only when the caller left it
  // unset, so placement can be varied independently of the rest of the flow.
  placer_options.seed = resolved_placer_seed(ctx.options);
  ctx.placement = place::place(prob, *ctx.graph, placer_options);
  if (ctx.options.closure_iterations >= 2) {
    // Cache the problem for the closure loop's re-places — like
    // flow_timing, it depends only on the clustering.
    ctx.placement_build = std::make_shared<PlacementBuild>(std::move(build));
  }
  if (ctx.placement.restart_stats.size() > 1) {
    for (std::size_t r = 0; r < ctx.placement.restart_stats.size(); ++r) {
      ctx.stage_timings.push_back(
          StageTiming{"place.restart" + std::to_string(r),
                      ctx.placement.restart_stats[r].seconds});
    }
  }
}

// --- RouteStage --------------------------------------------------------------

std::vector<std::vector<route::RouteNet>> build_route_nets(
    const FlowContext& ctx) {
  const std::size_t n = ctx.spec.num_contexts;
  const arch::RoutingGraph& graph = *ctx.graph;

  const auto cluster_pos = [&](std::size_t k) {
    return ctx.placement.cluster_pos[k];
  };
  const auto class_driver_node = [&](std::size_t cls) -> arch::NodeId {
    const auto it = ctx.input_class_terminal.find(cls);
    if (it != ctx.input_class_terminal.end()) {
      return graph.pad(ctx.placement.io_pads[it->second]);
    }
    const std::size_t slot = ctx.planes.slot_of_class.at(cls);
    const std::size_t k = ctx.slot_cluster[slot];
    const auto [x, y] = cluster_pos(k);
    return graph.out_pin(x, y, ctx.slot_output[slot]);
  };
  const auto sink_node = [&](const SinkKey& key) -> arch::NodeId {
    if (key.kind == SinkKey::Kind::kPad) {
      return graph.pad(ctx.placement.io_pads[key.terminal]);
    }
    const auto [x, y] = cluster_pos(key.cluster);
    return graph.in_pin(x, y, key.pin);
  };

  std::vector<std::vector<route::RouteNet>> nets(n);
  for (std::size_t c = 0; c < n; ++c) {
    nets[c].reserve(ctx.net_class[c].size());
    for (std::size_t i = 0; i < ctx.net_class[c].size(); ++i) {
      route::RouteNet net;
      net.name = "net_cls" + std::to_string(ctx.net_class[c][i]);
      net.source = class_driver_node(ctx.net_class[c][i]);
      net.sinks.reserve(ctx.sink_keys[c][i].size());
      for (const SinkKey& key : ctx.sink_keys[c][i]) {
        net.sinks.push_back(sink_node(key));
      }
      nets[c].push_back(std::move(net));
    }
  }
  return nets;
}

void RouteStage::run(FlowContext& ctx) const {
  // One logical walk yields both the physical net lists and the timing
  // specs; net/sink indices of the two are aligned by construction.
  // PlaceStage may have cached the walk (it is placement-independent).
  // The logical halves (net_class, sink_keys) stay in the context so the
  // closure loop can rebuild nets after a re-place.
  FlowTiming local_timing;
  FlowTiming& ft =
      ctx.flow_timing ? *ctx.flow_timing
                      : (local_timing = build_flow_timing(ctx), local_timing);
  ctx.timing_specs = std::move(ft.specs);
  ctx.net_class = std::move(ft.net_class);
  ctx.sink_keys = std::move(ft.sink_keys);
  ctx.flow_timing.reset();  // contents were moved out; the cache is spent

  ctx.nets_per_context = build_route_nets(ctx);
  const route::Router router(*ctx.graph, ctx.options.router);
  // The history carry only matters when the loop will route again; the
  // extra output does not perturb the routing itself.
  route::RouteHistory* history =
      ctx.options.closure_iterations >= 2 ? &ctx.route_history : nullptr;
  // The cross-context schedulers (negotiated and interleaved) want the
  // timing specs even with timing_mode off: they power the per-round /
  // per-wave STA scoring (the timing-driven expansion cost stays gated on
  // timing_mode inside the router either way).
  const bool negotiated = ctx.options.router.cross_context_mode !=
                          route::CrossContextMode::kOff;
  if (!ctx.router_pool) {
    ctx.router_pool = std::make_shared<route::CorePool>();
  }
  ctx.routing = router.route(
      ctx.nets_per_context,
      ctx.options.router.timing_mode || negotiated ? &ctx.timing_specs
                                                   : nullptr,
      history, nullptr, ctx.router_pool.get());
  if (!ctx.routing.success) {
    throw FlowError("routing failed to converge (congestion)");
  }
}

// --- TimingStage -------------------------------------------------------------

void TimingStage::run(FlowContext& ctx) const {
  const std::size_t n = ctx.spec.num_contexts;
  MCFPGA_CHECK(ctx.timing_specs.size() == n && ctx.routing.success,
               "timing stage requires a routed context");

  ctx.timing_reports.resize(n);
  ctx.context_stats.assign(n, ContextStats{});
  for (std::size_t c = 0; c < n; ++c) {
    const timing::ContextTimingSpec& spec = ctx.timing_specs[c];
    const timing::ConnectionArcs arcs(spec);
    timing::TimingGraph sta(spec.num_nodes, arcs.arcs());
    for (std::size_t i = 0; i < ctx.routing.nets[c].size(); ++i) {
      const auto& paths = ctx.routing.nets[c][i].paths;
      MCFPGA_CHECK(paths.size() == spec.nets[i].sinks.size(),
                   "routed paths must parallel the timing spec");
      for (std::size_t j = 0; j < paths.size(); ++j) {
        arcs.set_connection_switches(sta, arcs.connection(i, j),
                                     paths[j].switch_count());
      }
    }
    sta.analyze();
    ctx.timing_reports[c] = sta.report();

    auto& stats = ctx.context_stats[c];
    const route::ContextRouteSummary& summary = ctx.routing.context_summary[c];
    stats.nets = summary.nets;
    stats.wire_nodes_used = summary.wire_nodes_used;
    stats.switches_crossed = summary.switches_crossed;
    stats.critical_path = ctx.timing_reports[c].critical_path;
    stats.cross_context_conflicts = summary.cross_context_conflicts;
    stats.heap_pushes = summary.heap_pushes;
    stats.heap_pops = summary.heap_pops;
    stats.stale_pops = summary.stale_pops;
    stats.nodes_expanded = summary.nodes_expanded;
    stats.interleave_reroutes = summary.interleave_reroutes;
    stats.interleave_requeues = summary.interleave_requeues;
    stats.spec_hits = summary.spec_hits;
    stats.spec_aborts = summary.spec_aborts;
  }
}

// --- ProgramStage ------------------------------------------------------------

sim::LbConfig build_lb_config(const FlowContext& ctx, std::size_t k) {
  const Cluster& cl = ctx.clusters[k];
  const auto [x, y] = ctx.placement.cluster_pos[k];
  sim::LbConfig cfg;
  cfg.x = x;
  cfg.y = y;
  cfg.mode = cl.mode;
  cfg.outputs.resize(ctx.spec.logic_block.num_outputs);
  for (const std::size_t s : cl.slots) {
    auto& out = cfg.outputs[ctx.slot_output[s]];
    out.used = true;
    out.plane_tables.assign(cl.mode.planes,
                            BitVector(std::size_t{1} << cl.mode.inputs));
    for (const auto& e : ctx.planes.slots[s].entries) {
      // Pin positions of the entry's fanins.
      std::vector<std::size_t> pin(e.use.fanin_classes.size());
      for (std::size_t i = 0; i < pin.size(); ++i) {
        pin[i] = pin_of(cl, e.use.fanin_classes[i]);
      }
      BitVector table(std::size_t{1} << cl.mode.inputs);
      for (std::size_t a = 0; a < table.size(); ++a) {
        std::size_t address = 0;
        for (std::size_t i = 0; i < pin.size(); ++i) {
          if ((a >> pin[i]) & 1) {
            address |= std::size_t{1} << i;
          }
        }
        table.set(a, e.use.truth_table.get(address));
      }
      for (const std::size_t plane : e.planes) {
        out.plane_tables[plane] = table;
      }
    }
  }
  return cfg;
}

std::size_t append_lb_rows(config::Bitstream& bitstream,
                           const sim::LbConfig& lb,
                           std::size_t num_contexts) {
  const std::size_t n = num_contexts;
  std::size_t appended = 0;
  const std::string prefix =
      "lb(" + std::to_string(lb.x) + "," + std::to_string(lb.y) + ")";
  for (std::size_t o = 0; o < lb.outputs.size(); ++o) {
    if (!lb.outputs[o].used) {
      continue;
    }
    const auto& tables = lb.outputs[o].plane_tables;
    const std::size_t addresses = std::size_t{1} << lb.mode.inputs;
    for (std::size_t a = 0; a < addresses; ++a) {
      config::ContextPattern pattern(n);
      for (std::size_t c = 0; c < n; ++c) {
        pattern.set_value(c, tables[c & (lb.mode.planes - 1)].get(a));
      }
      bitstream.add_row(
          prefix + ".out" + std::to_string(o) + "[" + std::to_string(a) + "]",
          config::ResourceKind::kLutBit, std::move(pattern));
      ++appended;
    }
  }
  // Mode (size-controller) bits: context-independent by definition.
  const std::size_t mode_bits = config::num_id_bits(n);
  const std::size_t planes_log =
      static_cast<std::size_t>(std::log2(lb.mode.planes) + 0.5);
  for (std::size_t b = 0; b < mode_bits; ++b) {
    bitstream.add_row(prefix + ".mode" + std::to_string(b),
                      config::ResourceKind::kControlBit,
                      config::ContextPattern(n, ((planes_log >> b) & 1) != 0));
    ++appended;
  }
  return appended;
}

void ProgramStage::run(FlowContext& ctx) const {
  const std::size_t n = ctx.spec.num_contexts;
  const arch::RoutingGraph& graph = *ctx.graph;

  ctx.program.switch_patterns = ctx.routing.switch_patterns;
  for (std::size_t k = 0; k < ctx.clusters.size(); ++k) {
    ctx.program.lbs.push_back(build_lb_config(ctx, k));
  }
  for (const auto& [name, term] : ctx.input_terminals) {
    ctx.program.input_pads[name] = ctx.placement.io_pads[term];
  }
  for (const auto& [name, term] : ctx.output_terminals) {
    ctx.program.output_pads[name] = ctx.placement.io_pads[term];
  }

  // Full-fabric bitstream: the routing rows come straight from the
  // per-context switch patterns the router committed (no net re-scan).
  ctx.full_bitstream = ctx.routing.to_bitstream(graph);
  for (const auto& lb : ctx.program.lbs) {
    append_lb_rows(ctx.full_bitstream, lb, n);
  }
}

// --- Pipeline driver ---------------------------------------------------------

FlowContext make_flow_context(const netlist::MultiContextNetlist& netlist,
                              const arch::FabricSpec& spec,
                              const CompileOptions& options) {
  netlist.validate();
  FlowContext ctx;
  ctx.input = &netlist;
  ctx.spec = spec;
  ctx.spec.validate();
  ctx.options = options;
  MCFPGA_REQUIRE(netlist.num_contexts() == ctx.spec.num_contexts,
                 "netlist context count must match the fabric");
  MCFPGA_REQUIRE(options.closure_iterations >= 1,
                 "closure loop needs at least one iteration");
  MCFPGA_REQUIRE(options.closure_slack_tolerance >= 0.0,
                 "closure_slack_tolerance must be non-negative");
  return ctx;
}

const std::vector<const Stage*>& default_pipeline() {
  static const TechMapStage tech_map;
  static const SharingStage sharing;
  static const PlaneAllocStage plane_alloc;
  static const ClusterStage cluster;
  static const PlaceStage place;
  static const RouteStage route;
  static const TimingStage timing;
  static const ProgramStage program;
  static const std::vector<const Stage*> stages = {
      &tech_map, &sharing, &plane_alloc, &cluster,
      &place,    &route,   &timing,      &program};
  return stages;
}

void run_pipeline(FlowContext& ctx,
                  const std::vector<const Stage*>& stages) {
  using clock = std::chrono::steady_clock;
  for (const Stage* stage : stages) {
    if (ctx.observer != nullptr &&
        !ctx.observer->on_stage_start(stage->name())) {
      throw FlowCancelled(std::string("compile abandoned before stage '") +
                          stage->name() + "'");
    }
    const auto start = clock::now();
    // The cache hook may satisfy the whole stage from stored artifacts;
    // only a miss runs the stage and publishes what it computed.
    const bool hit =
        ctx.cache != nullptr && ctx.cache->before_stage(stage->name(), ctx);
    if (!hit) {
      stage->run(ctx);
      if (ctx.cache != nullptr) {
        ctx.cache->after_stage(stage->name(), ctx);
      }
    }
    const std::chrono::duration<double> elapsed = clock::now() - start;
    ctx.stage_timings.push_back(StageTiming{stage->name(), elapsed.count()});
    if (ctx.observer != nullptr) {
      ctx.observer->on_stage_done(stage->name(), elapsed.count());
    }
  }
}

CompiledDesign finalize_design(FlowContext&& ctx) {
  CompiledDesign d;
  d.fabric = ctx.spec;
  d.netlist = std::move(ctx.netlist);
  d.sharing = std::move(ctx.sharing);
  d.planes = std::move(ctx.planes);
  d.clusters = std::move(ctx.clusters);
  d.slot_cluster = std::move(ctx.slot_cluster);
  d.slot_output = std::move(ctx.slot_output);
  d.placement = std::move(ctx.placement);
  d.routing = std::move(ctx.routing);
  d.program = std::move(ctx.program);
  d.full_bitstream = std::move(ctx.full_bitstream);
  d.context_stats = std::move(ctx.context_stats);
  d.timing_reports = std::move(ctx.timing_reports);
  d.closure_stats = std::move(ctx.closure_stats);
  d.stage_timings = std::move(ctx.stage_timings);
  d.input_terminals = std::move(ctx.input_terminals);
  d.output_terminals = std::move(ctx.output_terminals);
  return d;
}

}  // namespace mcfpga::core
