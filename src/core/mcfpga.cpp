#include "core/mcfpga.hpp"

#include <map>

#include "common/rng.hpp"
#include "netlist/eval.hpp"

namespace mcfpga::core {

MCFPGA::MCFPGA(const netlist::MultiContextNetlist& netlist,
               const arch::FabricSpec& spec, const CompileOptions& options)
    : design_(compile(netlist, spec, options)) {
  graph_ = std::make_unique<arch::RoutingGraph>(design_.fabric);
  simulator_ =
      std::make_unique<sim::FabricSimulator>(*graph_, design_.program);
}

netlist::ValueMap MCFPGA::run(std::size_t context,
                              const netlist::ValueMap& inputs) const {
  return simulator_->eval(context, inputs);
}

std::size_t MCFPGA::verify(std::size_t vectors, std::uint64_t seed) const {
  Rng rng(seed);
  std::size_t mismatches = 0;
  for (std::size_t c = 0; c < design_.fabric.num_contexts; ++c) {
    const netlist::Dfg& dfg = design_.netlist.context(c);
    for (std::size_t v = 0; v < vectors; ++v) {
      netlist::ValueMap inputs;
      for (const auto& node : dfg.nodes()) {
        if (node.type == netlist::NodeType::kPrimaryInput) {
          inputs[node.name] = rng.next_bool();
        }
      }
      const netlist::ValueMap expected = netlist::evaluate(dfg, inputs);
      const netlist::ValueMap actual = simulator_->eval(c, inputs);
      for (const auto& [name, value] : expected) {
        const auto it = actual.find(name);
        if (it == actual.end() || it->second != value) {
          ++mismatches;
        }
      }
    }
  }
  return mismatches;
}

config::BitstreamStats MCFPGA::bitstream_stats() const {
  return config::compute_stats(design_.full_bitstream);
}

area::ComparisonReport MCFPGA::area_report(
    const area::ComparisonOptions& options) const {
  // Group the routing switches into their owning physical blocks; decoder
  // sharing (when enabled) happens within a block, never across blocks.
  std::map<std::tuple<arch::SwitchOwner, std::int32_t, std::int32_t>,
           config::Bitstream>
      blocks;
  const std::size_t n = design_.fabric.num_contexts;
  for (std::size_t s = 0; s < graph_->num_switches(); ++s) {
    const auto& sw = graph_->rr_switch(static_cast<arch::SwitchId>(s));
    const auto key = std::make_tuple(sw.owner, sw.x, sw.y);
    auto it = blocks.find(key);
    if (it == blocks.end()) {
      it = blocks.emplace(key, config::Bitstream(n)).first;
    }
    it->second.add_row(sw.name, config::ResourceKind::kRoutingSwitch,
                       design_.routing.switch_patterns[s]);
  }
  std::vector<config::Bitstream> block_list;
  block_list.reserve(blocks.size());
  for (auto& [key, bs] : blocks) {
    block_list.push_back(std::move(bs));
  }
  const area::AreaModel model;
  return model.compare_fabric(design_.fabric, block_list, options);
}

}  // namespace mcfpga::core
