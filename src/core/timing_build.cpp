#include "core/timing_build.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace mcfpga::core {

namespace {

bool same_key(const SinkKey& a, const SinkKey& b) {
  if (a.kind != b.kind) {
    return false;
  }
  return a.kind == SinkKey::Kind::kPin
             ? a.cluster == b.cluster && a.pin == b.pin
             : a.terminal == b.terminal;
}

}  // namespace

FlowTiming build_flow_timing(const FlowContext& ctx) {
  const std::size_t n = ctx.spec.num_contexts;
  const std::size_t num_slots = ctx.planes.slots.size();

  FlowTiming ft;
  ft.net_class.resize(n);
  ft.sink_keys.resize(n);
  ft.specs.resize(n);

  // Timing node of a class's driver: input classes sit on I/O terminals,
  // everything else on the slot that computes the class.
  const auto driver_node = [&](std::size_t cls) -> std::uint32_t {
    const auto it = ctx.input_class_terminal.find(cls);
    if (it != ctx.input_class_terminal.end()) {
      return static_cast<std::uint32_t>(num_slots + it->second);
    }
    return static_cast<std::uint32_t>(
        ctx.planes.slot_of_class.at(cls));
  };

  for (std::size_t c = 0; c < n; ++c) {
    struct NetBuild {
      std::vector<SinkKey> keys;
      timing::ContextTimingSpec::NetTiming timing;
    };
    std::map<std::size_t, NetBuild> by_driver;  // class -> net under build

    // Mirrors RouteStage's historical sink dedup (by physical node): two
    // (cluster, pin) pairs or two terminals never alias one node, so the
    // logical keys dedup identically.
    const auto add_sink = [&](std::size_t cls, const SinkKey& key,
                              std::uint32_t reader, bool is_lut) {
      NetBuild& nb = by_driver[cls];
      std::size_t idx = 0;
      for (; idx < nb.keys.size(); ++idx) {
        if (same_key(nb.keys[idx], key)) {
          break;
        }
      }
      if (idx == nb.keys.size()) {
        nb.keys.push_back(key);
        nb.timing.sinks.emplace_back();
      }
      const std::uint32_t from = driver_node(cls);
      if (from == reader) {
        return;  // self-arc: a slot never times against itself
      }
      auto& readers = nb.timing.sinks[idx].readers;
      const auto dup = std::find_if(
          readers.begin(), readers.end(),
          [&](const timing::SinkTiming::Reader& r) { return r.to == reader; });
      if (dup == readers.end()) {
        readers.push_back(timing::SinkTiming::Reader{from, reader, is_lut});
      }
    };

    for (std::size_t k = 0; k < ctx.clusters.size(); ++k) {
      const Cluster& cl = ctx.clusters[k];
      for (const std::size_t s : cl.slots) {
        for (const auto& e : ctx.planes.slots[s].entries) {
          if (std::find(e.use.contexts.begin(), e.use.contexts.end(), c) ==
              e.use.contexts.end()) {
            continue;
          }
          for (const std::size_t f : e.use.fanin_classes) {
            const auto pin_it = std::find(cl.pin_signals.begin(),
                                          cl.pin_signals.end(), f);
            MCFPGA_CHECK(pin_it != cl.pin_signals.end(),
                         "signal not present on cluster pins");
            SinkKey key;
            key.kind = SinkKey::Kind::kPin;
            key.cluster = k;
            key.pin =
                static_cast<std::size_t>(pin_it - cl.pin_signals.begin());
            add_sink(f, key, static_cast<std::uint32_t>(s), true);
          }
        }
      }
    }
    for (const auto& [name, drivers] : ctx.output_driver) {
      if (drivers[c] == SIZE_MAX) {
        continue;
      }
      const std::size_t term = ctx.output_terminals.at(name);
      SinkKey key;
      key.kind = SinkKey::Kind::kPad;
      key.terminal = term;
      add_sink(drivers[c], key,
               static_cast<std::uint32_t>(num_slots + term), false);
    }

    ft.specs[c].num_nodes = num_slots + ctx.num_terminals;
    ft.specs[c].se_delay = ctx.options.delay.se_delay;
    ft.specs[c].lut_delay = ctx.options.delay.lut_delay;
    ft.net_class[c].reserve(by_driver.size());
    ft.sink_keys[c].reserve(by_driver.size());
    ft.specs[c].nets.reserve(by_driver.size());
    for (auto& [cls, nb] : by_driver) {
      ft.net_class[c].push_back(cls);
      ft.sink_keys[c].push_back(std::move(nb.keys));
      ft.specs[c].nets.push_back(std::move(nb.timing));
    }
  }
  return ft;
}

}  // namespace mcfpga::core
